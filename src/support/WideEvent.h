//===- WideEvent.h - Per-app run-ledger records -----------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The run ledger (docs/OBSERVABILITY.md, "Run ledger & reports"): every
/// analyzed app emits exactly one *wide event* — a single structured
/// record carrying identity (app name, 128-bit content key), outcome
/// (exit code, fidelity, cache hit/miss), and the full counter surface of
/// the run (graph shape, solver work, unknown-source breakdown, arena
/// bytes, SCC/wave engagement, phase seconds). Records append in input
/// order to a JSONL file — one header line, then one line per app — via
/// `--ledger-out`.
///
/// Like TraceSink, the ledger is opt-in by existence: drivers hold a
/// `WideEvent *` that is null when the ledger is off, so the disabled
/// cost is a branch. Per-task events merge through the same ordered
/// input-order walk as batch stdout/metrics, which makes the ledger
/// byte-identical at every `-j` and `--solve-jobs`.
///
/// Determinism contract: fields are classified *deterministic* (counters
/// reproducible across job counts and machines) or *volatile* (wall-clock
/// seconds, peak RSS, and the scheduling-engagement counters of the
/// stratified solve). Volatile fields are suppressed when the ledger is
/// written with IncludeVolatile = false — the `--no-times` contract,
/// mirroring MetricUnit::Seconds/BytesVolatile in the metrics export —
/// and never participate in report diffs.
///
/// This layer knows nothing of analysis types: fields are plain strings
/// and integers, filled by analysis::fillWideEvent (AppStats.h). The
/// aggregation/diff side lives in corpus/FleetReport.h.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_WIDEEVENT_H
#define GATOR_SUPPORT_WIDEEVENT_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace gator {
namespace support {

class JsonValue;

/// One per-app ledger record. Plain data; the analysis layer fills it,
/// the corpus layer aggregates it.
struct WideEvent {
  // --- identity -----------------------------------------------------
  uint64_t Index = 0;     ///< position in the run's input order
  std::string App;        ///< app/spec name or directory stem
  std::string ContentKey; ///< 32-hex content-only key (hashAppDir /
                          ///< hashAppSpec); options live in the header

  // --- outcome ------------------------------------------------------
  int ExitCode = 0;            ///< per-app CLI contract: 0/1/2
  std::string Fidelity = "complete"; ///< fidelityName() slug
  std::string Cache = "off";   ///< "hit" | "miss" | "off"
  bool GenerationFailed = false;

  // --- deterministic counters --------------------------------------
  uint64_t Classes = 0, Methods = 0;
  uint64_t LayoutIds = 0, ViewIds = 0;
  uint64_t InflViews = 0, AllocViews = 0, Listeners = 0;
  uint64_t GraphNodes = 0, FlowEdges = 0, ParentChildEdges = 0;
  uint64_t Propagations = 0, OpFirings = 0, ValuesPushed = 0;
  uint64_t DedupHits = 0, PeakSetSize = 0;
  uint64_t UnresolvedOps = 0, WorkCharged = 0;
  uint64_t UnknownViews = 0, UnknownIds = 0;
  /// (reason slug, count) pairs, nonzero reasons only, in slug-registry
  /// order. unknownTotal() is the headline number.
  std::vector<std::pair<std::string, uint64_t>> UnknownByReason;
  uint64_t ArenaBytes = 0;

  // --- volatile fields (suppressed under --no-times) ---------------
  double BuildSeconds = 0.0, SolveSeconds = 0.0;
  uint64_t PeakRssBytes = 0;
  /// Stratified-solve engagement (zero when the solve ran serial).
  /// Scheduling-dependent — a `--solve-jobs 4` run condenses SCCs a
  /// serial run never computes — hence volatile by classification even
  /// though individually reproducible for a fixed job count.
  uint64_t SccCount = 0, SccStrata = 0;
  uint64_t BarrierWaves = 0, ParallelRounds = 0;

  uint64_t unknownTotal() const {
    uint64_t T = 0;
    for (const auto &R : UnknownByReason)
      T += R.second;
    return T;
  }

  /// Writes this record as one JSONL line (no trailing newline); fixed
  /// key order, doubles at fixed %.6f precision, volatile fields only
  /// when \p IncludeVolatile.
  void writeJsonl(std::ostream &OS, bool IncludeVolatile) const;

  /// Reads a record back from a parsed JSONL line. Tolerant: absent
  /// volatile fields stay zero (the --no-times ledger shape).
  static bool fromJson(const JsonValue &V, WideEvent &Out,
                       std::string &Error);
};

/// The ledger's first line: format stamp plus everything a consumer needs
/// to decide whether two ledgers are comparable.
struct LedgerHeader {
  /// Bumped on any schema change (key set, field semantics) so report
  /// tooling refuses skewed inputs instead of mis-aggregating them.
  static constexpr uint32_t FormatVersion = 1;

  uint32_t Format = FormatVersion;
  std::string Tool = "gator-cpp";
  /// hashAnalysisOptions() of the run, 32 hex digits. Diffs refuse
  /// ledgers whose digests differ — the runs analyzed under different
  /// semantics and their counters are not comparable.
  std::string OptionsDigest;
  /// True when the run suppressed volatile fields (--no-times).
  bool NoTimes = false;
  uint64_t Apps = 0;

  void writeJsonl(std::ostream &OS) const;
  static bool fromJson(const JsonValue &V, LedgerHeader &Out,
                       std::string &Error);
};

/// A fully parsed ledger document.
struct Ledger {
  LedgerHeader Header;
  std::vector<WideEvent> Events;
};

/// Writes the whole ledger: header line, then one line per event in the
/// given order. Volatile fields follow Header.NoTimes.
void writeLedger(std::ostream &OS, const LedgerHeader &Header,
                 const std::vector<WideEvent> &Events);

/// Parses a JSONL ledger document. Fails (false + \p Error) on a missing
/// or version-skewed header, malformed JSON, or a record line that is not
/// an object; blank lines are skipped.
bool readLedger(std::string_view Text, Ledger &Out, std::string &Error);

/// Reads \p Path and parses it. IO errors report through \p Error too.
bool readLedgerFile(const std::string &Path, Ledger &Out,
                    std::string &Error);

/// One numeric ledger field, for generic aggregation: name (the JSONL
/// key), accessor, and whether the field is volatile (absent under
/// --no-times, excluded from diffs).
struct WideEventField {
  const char *Name;
  double (*Get)(const WideEvent &);
  bool Volatile;
};

/// The full numeric field table in canonical (report) order.
const std::vector<WideEventField> &wideEventNumericFields();

} // namespace support
} // namespace gator

#endif // GATOR_SUPPORT_WIDEEVENT_H
