# Empty compiler generated dependencies file for gator_android.
# This may be replaced when dependencies are built.
