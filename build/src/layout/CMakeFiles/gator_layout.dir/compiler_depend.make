# Empty compiler generated dependencies file for gator_layout.
# This may be replaced when dependencies are built.
