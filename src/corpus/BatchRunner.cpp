//===- BatchRunner.cpp - Parallel corpus-wide analysis ----------*- C++ -*-===//

#include "corpus/BatchRunner.h"

using namespace gator;
using namespace gator::corpus;

std::vector<BatchAppResult>
gator::corpus::analyzeCorpus(const std::vector<AppSpec> &Specs,
                             const analysis::AnalysisOptions &Options,
                             support::ParallelForStats *Stats,
                             bool KeepArtifacts,
                             analysis::SolutionCache *Cache) {
  analysis::AnalysisOptions TaskOptions = Options;
  if (!TaskOptions.Budget.SharedDeadline)
    TaskOptions.Budget.SharedDeadline =
        support::makeSharedDeadline(Options.Budget.MaxWallSeconds);
  // App-level parallelism wins over intra-solve parallelism: nested pools
  // would oversubscribe the machine, and results are identical either way
  // (docs/PARALLEL.md).
  if (support::resolveJobs(Options.Jobs) > 1)
    TaskOptions.SolveJobs = 1;

  // The cache serves a record without artifacts, so it only applies to
  // stats-only sweeps; a wall deadline makes outcomes timing-dependent
  // and thus uncacheable (docs/INCREMENTAL.md).
  if (KeepArtifacts || !analysis::cacheEligible(TaskOptions))
    Cache = nullptr;
  const support::Hash128 OptionsKey =
      Cache ? analysis::hashAnalysisOptions(TaskOptions) : support::Hash128{};

  return support::parallelMap<BatchAppResult>(
      Options.Jobs, Specs.size(),
      [&](size_t I) {
        BatchAppResult R;
        R.Index = I;
        R.Name = Specs[I].Name;

        // Tracing is thread-confined: each task records into its own sink
        // and the caller merges them in spec order. The shared sink from
        // the options is never touched inside the fan-out. The sink exists
        // before the cache consult so warm hits still record their
        // cache.lookup span inside the analyze-app envelope.
        analysis::AnalysisOptions AppOptions = TaskOptions;
        if (Options.Trace) {
          R.Trace = std::make_unique<support::TraceSink>();
          AppOptions.Trace = R.Trace.get();
        }
        support::TraceSpan AppSpan(AppOptions.Trace, "analyze-app");
        AppSpan.arg("index", I);

        support::Hash128 Key{};
        if (Cache) {
          Key = analysis::combineCacheKey(hashAppSpec(Specs[I]), OptionsKey);
          analysis::CachedAnalysis Entry;
          if (Cache->lookup(Key, Entry, AppOptions.Trace) ==
              analysis::SolutionCache::Outcome::Hit) {
            R.CacheHit = true;
            R.Stats = Entry.Stats;
            R.Metrics = Entry.Precision;
            R.BuildSeconds = Entry.Stats.BuildSeconds;
            R.SolveSeconds = Entry.Stats.SolveSeconds;
            return R;
          }
          // Corrupt degrades to a miss: fall through to the full solve.
        }

        R.App = generateApp(Specs[I]);
        if (R.App.Bundle->Diags.hasErrors()) {
          R.GenerationFailed = true;
          return R;
        }
        R.Result = analysis::GuiAnalysis::run(
            R.App.Bundle->Program, *R.App.Bundle->Layouts,
            R.App.Bundle->Android, AppOptions, R.App.Bundle->Diags);
        R.Stats = analysis::collectAppStats(R.Name, R.App.Bundle->Program,
                                            *R.Result);
        R.Metrics = R.Result->metrics();
        R.BuildSeconds = R.Result->BuildSeconds;
        R.SolveSeconds = R.Result->SolveSeconds;
        if (Cache) {
          analysis::CachedAnalysis Entry;
          Entry.Stats = R.Stats;
          Entry.Precision = R.Metrics;
          analysis::captureFlowsetHistogram(*R.Result->Sol,
                                            Entry.FlowHistCounts,
                                            Entry.FlowHistSum,
                                            Entry.FlowHistCount);
          Cache->store(Key, Entry, AppOptions.Trace);
        }
        if (!KeepArtifacts) {
          // All per-app ownership (IR decls, graph adjacency, flow sets)
          // lives on arenas inside the bundle and the result, so this is
          // a pure slab drop — no per-node deletes (docs/MEMORY.md). The
          // stats row above already harvested ArenaBytes/PeakRssBytes.
          R.Result.reset();
          R.App = GeneratedApp();
        }
        return R;
      },
      Stats);
}
