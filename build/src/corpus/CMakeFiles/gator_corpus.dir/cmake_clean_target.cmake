file(REMOVE_RECURSE
  "libgator_corpus.a"
)
