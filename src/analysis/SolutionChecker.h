//===- SolutionChecker.h - A-posteriori fixed-point validation --*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates that a computed solution is actually a fixed point of the
/// inference rules of Section 4.2 — the analysis analogue of an IR
/// verifier. Checked closure properties:
///
///  1. Flow closure: for every flow edge n -> n' between value-carrying
///     nodes, flowsTo(n) ⊆ flowsTo(n') (modulo declared-type filtering
///     when enabled).
///  2. ADDVIEW2 closure: every (parent view, child view) pair reaching an
///     AddView2 node is connected by a parent-child edge.
///  3. SETID closure: every (view, id) pair reaching a SetId node has a
///     has-id edge.
///  4. SETLISTENER closure: every (view, listener) pair reaching a
///     SetListener node has a listener association edge.
///  5. FINDVIEW closure: every view the rule computes from the final
///     state is present in the operation's output variable.
///  6. INFLATE closure: every layout id reaching an Inflate node has a
///     minted view tree at that site (root with a roots-layout edge).
///  7. ADDVIEW1/INFLATE2 closure: every window value reaching the
///     receiver has a root edge to the respective root view(s).
///
/// Used by the property tests across the whole corpus; failures indicate
/// solver bugs (premature termination, missed re-firing).
///
/// Partial solutions (docs/ROBUSTNESS.md): a solution marked
/// TruncatedBudget or DegradedInput is deliberately not a fixed point, so
/// the closure properties above do not apply. Such solutions are instead
/// held to the weaker *consistency* contract — every recorded fact is
/// well-formed (valid node ids of the right kinds, in-range unresolved-op
/// indices, coherent fidelity markers, minted views self-seeded) even
/// though facts may be missing.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_SOLUTIONCHECKER_H
#define GATOR_ANALYSIS_SOLUTIONCHECKER_H

#include "analysis/GuiAnalysis.h"

#include <string>
#include <vector>

namespace gator {
namespace analysis {

/// Checks a solution against the contract its fidelity marker promises:
/// full closure (plus consistency) for Complete solutions, consistency
/// only for partial ones. Returns the list of violations (empty when the
/// solution honors its contract).
std::vector<std::string> checkSolutionClosure(const AnalysisResult &Result);

/// The structural-consistency half alone: valid for any solution,
/// including truncated and degraded ones.
std::vector<std::string>
checkSolutionConsistency(const AnalysisResult &Result);

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_SOLUTIONCHECKER_H
