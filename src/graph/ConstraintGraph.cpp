//===- ConstraintGraph.cpp - The GUI constraint graph -----------*- C++ -*-===//

#include "graph/ConstraintGraph.h"

#include "support/Check.h"

#include <algorithm>
#include <sstream>

using namespace gator;
using namespace gator::graph;
using namespace gator::ir;

const char *gator::graph::nodeKindName(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::Var:
    return "Var";
  case NodeKind::Field:
    return "Field";
  case NodeKind::Alloc:
    return "Alloc";
  case NodeKind::ViewAlloc:
    return "ViewAlloc";
  case NodeKind::ViewInfl:
    return "ViewInfl";
  case NodeKind::Activity:
    return "Activity";
  case NodeKind::LayoutId:
    return "LayoutId";
  case NodeKind::ViewId:
    return "ViewId";
  case NodeKind::ClassConst:
    return "ClassConst";
  case NodeKind::Op:
    return "Op";
  case NodeKind::UnknownView:
    return "UnknownView";
  case NodeKind::UnknownId:
    return "UnknownId";
  }
  return "unknown";
}

const char *gator::graph::unknownReasonPhrase(UnknownReason Reason) {
  switch (Reason) {
  case UnknownReason::None:
    return "none";
  case UnknownReason::ReflectiveNew:
    return "reflective construction";
  case UnknownReason::UnknownClass:
    return "unresolved class";
  case UnknownReason::DynamicId:
    return "non-constant id";
  case UnknownReason::MissingLayout:
    return "missing layout resource";
  }
  return "unknown";
}

const char *gator::graph::unknownReasonSlug(UnknownReason Reason) {
  switch (Reason) {
  case UnknownReason::None:
    return "none";
  case UnknownReason::ReflectiveNew:
    return "reflective_new";
  case UnknownReason::UnknownClass:
    return "unknown_class";
  case UnknownReason::DynamicId:
    return "dynamic_id";
  case UnknownReason::MissingLayout:
    return "missing_layout";
  }
  return "unknown";
}

bool gator::graph::isValueNodeKind(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::Alloc:
  case NodeKind::ViewAlloc:
  case NodeKind::ViewInfl:
  case NodeKind::Activity:
  case NodeKind::LayoutId:
  case NodeKind::ViewId:
  case NodeKind::ClassConst:
  case NodeKind::UnknownView:
  case NodeKind::UnknownId:
    return true;
  default:
    return false;
  }
}

bool gator::graph::isViewNodeKind(NodeKind Kind) {
  return Kind == NodeKind::ViewAlloc || Kind == NodeKind::ViewInfl ||
         Kind == NodeKind::UnknownView;
}

//===----------------------------------------------------------------------===//
// Node factories
//===----------------------------------------------------------------------===//

void ConstraintGraph::reserve(size_t NodeHint, size_t EdgeHint) {
  Nodes.reserve(NodeHint);
  FlowSucc.reserve(NodeHint);
  KindIndex[static_cast<size_t>(NodeKind::Var)].reserve(EdgeArena,
                                                        NodeHint / 2);
  FlowEdges.reserve(EdgeHint / 4); // only high-degree sources land here
}

NodeId ConstraintGraph::push(Node N) {
  NodeId Id = static_cast<NodeId>(Nodes.size());
  KindIndex[static_cast<size_t>(N.Kind)].push_back(EdgeArena, Id);
  Nodes.push_back(std::move(N));
  FlowSucc.emplace_back();
  return Id;
}

NodeId ConstraintGraph::getVarNode(const MethodDecl *M, VarId V) {
  if (VarNodes.size() <= M->globalId())
    VarNodes.resize(M->globalId() + 1);
  NodeList &PerMethod = VarNodes[M->globalId()];
  if (static_cast<size_t>(V) >= PerMethod.size())
    PerMethod.resize(EdgeArena,
                     std::max(M->vars().size(), static_cast<size_t>(V) + 1),
                     InvalidNode);
  NodeId &Slot = PerMethod[V];
  if (Slot != InvalidNode)
    return Slot;
  Node N;
  N.Kind = NodeKind::Var;
  N.Method = M;
  N.Var = V;
  Slot = push(std::move(N));
  return Slot;
}

NodeId ConstraintGraph::getFieldNode(const FieldDecl *F) {
  if (FieldNodes.size() <= F->globalId())
    FieldNodes.resize(F->globalId() + 1, InvalidNode);
  NodeId &Slot = FieldNodes[F->globalId()];
  if (Slot != InvalidNode)
    return Slot;
  Node N;
  N.Kind = NodeKind::Field;
  N.Field = F;
  Slot = push(std::move(N));
  return Slot;
}

NodeId ConstraintGraph::getAllocNode(const MethodDecl *M, int32_t StmtIndex,
                                     const ClassDecl *Klass, bool IsView,
                                     SourceLocation Loc) {
  uint64_t Key = support::packSymbolKey(M->globalId(),
                                        static_cast<uint32_t>(StmtIndex));
  NodeKind Kind = IsView ? NodeKind::ViewAlloc : NodeKind::Alloc;
  if (const NodeId *Hit = AllocNodes.get(Key)) {
    // An edit-scale rebuild (docs/INCREMENTAL.md) may re-lower this
    // statement index with a different allocated class; the class is part
    // of the allocation's identity, so a mismatched memo hit mints a
    // fresh node and the session retires the stale one.
    const Node &Existing = node(*Hit);
    if (Existing.Klass == Klass && Existing.Kind == Kind)
      return *Hit;
  }
  Node N;
  N.Kind = Kind;
  N.Method = M;
  N.StmtIndex = StmtIndex;
  N.Klass = Klass;
  N.Loc = std::move(Loc);
  NodeId Id = push(std::move(N));
  AllocNodes.set(Key, Id);
  return Id;
}

NodeId ConstraintGraph::getActivityNode(const ClassDecl *Klass) {
  if (const NodeId *Hit = ActivityNodes.get(Klass->globalId()))
    return *Hit;
  Node N;
  N.Kind = NodeKind::Activity;
  N.Klass = Klass;
  NodeId Id = push(std::move(N));
  ActivityNodes.set(Klass->globalId(), Id);
  return Id;
}

NodeId ConstraintGraph::getIdNode(std::vector<NodeId> &Dense,
                                  support::FlatIdMap<NodeId> &Overflow,
                                  layout::ResourceId Base, NodeKind Kind,
                                  layout::ResourceId Res) {
  // Resource ids are interned densely from the table's fixed base; those
  // index a flat vector. Anything else (hand-rolled ids in tests, foreign
  // constants) takes the map fallback.
  constexpr int64_t DenseLimit = 1 << 20;
  int64_t Idx = static_cast<int64_t>(Res) - static_cast<int64_t>(Base);
  NodeId *Slot;
  if (Idx >= 0 && Idx < DenseLimit) {
    if (static_cast<size_t>(Idx) >= Dense.size())
      Dense.resize(Idx + 1, InvalidNode);
    Slot = &Dense[Idx];
  } else {
    Slot = &Overflow.getOrInsert(Res, InvalidNode);
  }
  if (*Slot != InvalidNode)
    return *Slot;
  Node N;
  N.Kind = Kind;
  N.Res = Res;
  *Slot = push(std::move(N));
  return *Slot;
}

NodeId ConstraintGraph::getLayoutIdNode(layout::ResourceId Res) {
  return getIdNode(LayoutIdNodes, LayoutIdOverflow,
                   layout::ResourceTable::LayoutIdBase, NodeKind::LayoutId,
                   Res);
}

NodeId ConstraintGraph::getViewIdNode(layout::ResourceId Res) {
  return getIdNode(ViewIdNodes, ViewIdOverflow,
                   layout::ResourceTable::ViewIdBase, NodeKind::ViewId, Res);
}

NodeId ConstraintGraph::getClassConstNode(const ClassDecl *Klass) {
  if (const NodeId *Hit = ClassConstNodes.get(Klass->globalId()))
    return *Hit;
  Node N;
  N.Kind = NodeKind::ClassConst;
  N.Klass = Klass;
  NodeId Id = push(std::move(N));
  ClassConstNodes.set(Klass->globalId(), Id);
  return Id;
}

NodeId ConstraintGraph::makeOpNode(android::OpKind Kind, SourceLocation Loc,
                                   const android::ListenerSpec *Listener,
                                   bool ChildOnly) {
  Node N;
  N.Kind = NodeKind::Op;
  N.Op = Kind;
  N.Listener = Listener;
  N.ChildOnly = ChildOnly;
  N.Loc = std::move(Loc);
  return push(std::move(N));
}

NodeId ConstraintGraph::makeViewInflNode(const ClassDecl *Klass,
                                         const layout::LayoutNode *LNode,
                                         NodeId Site) {
  Node N;
  N.Kind = NodeKind::ViewInfl;
  N.Klass = Klass;
  N.LNode = LNode;
  N.InflateSite = Site;
  return push(std::move(N));
}

NodeId ConstraintGraph::makeUnknownViewNode(UnknownReason Reason,
                                            const MethodDecl *M,
                                            SourceLocation Loc, NodeId Site) {
  assert(Reason != UnknownReason::None && "unknown node needs a reason");
  Node N;
  N.Kind = NodeKind::UnknownView;
  N.Unknown = Reason;
  N.Method = M;
  N.InflateSite = Site;
  N.Loc = std::move(Loc);
  return push(std::move(N));
}

NodeId ConstraintGraph::makeUnknownIdNode(UnknownReason Reason,
                                          const MethodDecl *M,
                                          SourceLocation Loc) {
  assert(Reason != UnknownReason::None && "unknown node needs a reason");
  Node N;
  N.Kind = NodeKind::UnknownId;
  N.Unknown = Reason;
  N.Method = M;
  N.Loc = std::move(Loc);
  return push(std::move(N));
}

//===----------------------------------------------------------------------===//
// Edges
//===----------------------------------------------------------------------===//

bool ConstraintGraph::addFlowEdge(NodeId From, NodeId To) {
  if (!GATOR_CHECK(From < Nodes.size() && To < Nodes.size(), Diags,
                   "dangling node id on flow edge; edge dropped")) {
    ++DroppedInvariants;
    return false;
  }
  NodeList &Succ = FlowSucc[From];
  if (Succ.size() <= SmallFlowDegree) {
    if (std::find(Succ.begin(), Succ.end(), To) != Succ.end())
      return false;
    Succ.push_back(EdgeArena, To);
    ++NumFlowEdges;
    if (Succ.size() > SmallFlowDegree)
      for (NodeId S : Succ) // degree crossed the threshold: migrate to hash
        insertEdgeKey(FlowEdges, edgeKey(From, S));
    return true;
  }
  if (!insertEdgeKey(FlowEdges, edgeKey(From, To)))
    return false;
  Succ.push_back(EdgeArena, To);
  ++NumFlowEdges;
  return true;
}

bool ConstraintGraph::addAssocEdge(AssocEdges &E, NodeId From, NodeId To) {
  if (!GATOR_CHECK(From < Nodes.size() && To < Nodes.size(), Diags,
                   "dangling node id on relationship edge; edge dropped")) {
    ++DroppedInvariants;
    return false;
  }
  if (E.Lists.size() <= From)
    E.Lists.resize(std::max<size_t>(From + 1, Nodes.size()));
  NodeList &List = E.Lists[From];
  if (List.size() <= SmallFlowDegree) {
    if (std::find(List.begin(), List.end(), To) != List.end())
      return false;
    List.push_back(EdgeArena, To);
    if (List.size() > SmallFlowDegree)
      for (NodeId S : List)
        insertEdgeKey(E.Spill, edgeKey(From, S));
    return true;
  }
  if (!insertEdgeKey(E.Spill, edgeKey(From, To)))
    return false;
  List.push_back(EdgeArena, To);
  return true;
}

bool ConstraintGraph::addParentChildEdge(NodeId Parent, NodeId Child) {
  // Bounds before kinds: indexing Nodes with a dangling id is UB.
  if (!GATOR_CHECK(Parent < Nodes.size() && Child < Nodes.size(), Diags,
                   "dangling node id on parent-child edge; edge dropped") ||
      !GATOR_CHECK(isViewNodeKind(Nodes[Parent].Kind) &&
                       isViewNodeKind(Nodes[Child].Kind),
                   Diags,
                   "parent-child edge endpoints must be views; edge dropped")) {
    ++DroppedInvariants;
    return false;
  }
  bool Added = addAssocEdge(ChildEdges, Parent, Child);
  if (Added) {
    ++NumParentChild;
    ++HierarchyRev; // invalidates every cached descendantsOf result
  }
  return Added;
}

bool ConstraintGraph::addHasIdEdge(NodeId View, NodeId ViewIdNode) {
  if (!GATOR_CHECK(View < Nodes.size() && ViewIdNode < Nodes.size(), Diags,
                   "dangling node id on has-id edge; edge dropped") ||
      !GATOR_CHECK(isViewNodeKind(Nodes[View].Kind), Diags,
                   "has-id edge from non-view; edge dropped") ||
      !GATOR_CHECK(Nodes[ViewIdNode].Kind == NodeKind::ViewId ||
                       Nodes[ViewIdNode].Kind == NodeKind::UnknownId,
                   Diags,
                   "has-id edge target is not a ViewId; edge dropped")) {
    ++DroppedInvariants;
    return false;
  }
  bool Added = addAssocEdge(HasIdEdges, View, ViewIdNode);
  if (Added) {
    if (ViewsByIdTable.size() <= ViewIdNode)
      ViewsByIdTable.resize(std::max<size_t>(ViewIdNode + 1, Nodes.size()));
    ViewsByIdTable[ViewIdNode].push_back(EdgeArena, View);
  }
  return Added;
}

bool ConstraintGraph::addRootEdge(NodeId Activity, NodeId View) {
  if (!GATOR_CHECK(Activity < Nodes.size() && View < Nodes.size(), Diags,
                   "dangling node id on root edge; edge dropped") ||
      !GATOR_CHECK(isViewNodeKind(Nodes[View].Kind), Diags,
                   "root edge to non-view; edge dropped")) {
    ++DroppedInvariants;
    return false;
  }
  bool Added = addAssocEdge(RootEdges, Activity, View);
  if (Added)
    ++HierarchyRev;
  return Added;
}

bool ConstraintGraph::addListenerEdge(NodeId View, NodeId ListenerValue) {
  if (!GATOR_CHECK(View < Nodes.size() && ListenerValue < Nodes.size(), Diags,
                   "dangling node id on listener edge; edge dropped") ||
      !GATOR_CHECK(isViewNodeKind(Nodes[View].Kind), Diags,
                   "listener edge from non-view; edge dropped")) {
    ++DroppedInvariants;
    return false;
  }
  return addAssocEdge(ListenerEdges, View, ListenerValue);
}

bool ConstraintGraph::addRootsLayoutEdge(NodeId View, NodeId LayoutIdNode) {
  if (!GATOR_CHECK(View < Nodes.size() && LayoutIdNode < Nodes.size(), Diags,
                   "dangling node id on roots-layout edge; edge dropped") ||
      !GATOR_CHECK(Nodes[LayoutIdNode].Kind == NodeKind::LayoutId ||
                       Nodes[LayoutIdNode].Kind == NodeKind::UnknownId,
                   Diags,
                   "roots-layout edge target is not a LayoutId; edge dropped")) {
    ++DroppedInvariants;
    return false;
  }
  return addAssocEdge(RootsLayoutEdges, View, LayoutIdNode);
}

//===----------------------------------------------------------------------===//
// Edge removal (docs/INCREMENTAL.md)
//===----------------------------------------------------------------------===//

/// Removes the first occurrence of \p To from \p List, preserving the
/// relative order of the survivors (adjacency order is part of the
/// deterministic-output contract). Returns false when absent.
static bool eraseOrdered(NodeList &List, NodeId To) {
  NodeId *It = std::find(List.begin(), List.end(), To);
  if (It == List.end())
    return false;
  for (NodeId *P = It; P + 1 != List.end(); ++P)
    *P = *(P + 1);
  List.pop_back();
  return true;
}

bool ConstraintGraph::removeFlowEdge(NodeId From, NodeId To) {
  if (From >= Nodes.size() || To >= Nodes.size())
    return false;
  if (!eraseOrdered(FlowSucc[From], To))
    return false;
  // Erase the spill key unconditionally: the source may have migrated into
  // the hash at some point, and a stale key would make a future re-add of
  // this edge report "already present" once the degree crosses the
  // threshold again. erase() tolerates absent keys.
  FlowEdges.erase(edgeKey(From, To));
  --NumFlowEdges;
  return true;
}

bool ConstraintGraph::removeAssocEdge(AssocEdges &E, NodeId From, NodeId To) {
  if (From >= E.Lists.size())
    return false;
  if (!eraseOrdered(E.Lists[From], To))
    return false;
  E.Spill.erase(edgeKey(From, To));
  return true;
}

bool ConstraintGraph::removeParentChildEdge(NodeId Parent, NodeId Child) {
  if (!removeAssocEdge(ChildEdges, Parent, Child))
    return false;
  --NumParentChild;
  ++HierarchyRev;
  return true;
}

bool ConstraintGraph::removeHasIdEdge(NodeId View, NodeId ViewIdNode) {
  if (!removeAssocEdge(HasIdEdges, View, ViewIdNode))
    return false;
  if (ViewIdNode < ViewsByIdTable.size())
    eraseOrdered(ViewsByIdTable[ViewIdNode], View);
  return true;
}

bool ConstraintGraph::removeRootEdge(NodeId Activity, NodeId View) {
  if (!removeAssocEdge(RootEdges, Activity, View))
    return false;
  ++HierarchyRev;
  return true;
}

bool ConstraintGraph::removeListenerEdge(NodeId View, NodeId ListenerValue) {
  return removeAssocEdge(ListenerEdges, View, ListenerValue);
}

bool ConstraintGraph::removeRootsLayoutEdge(NodeId View, NodeId LayoutIdNode) {
  return removeAssocEdge(RootsLayoutEdges, View, LayoutIdNode);
}

std::vector<NodeId> ConstraintGraph::rootHolders() const {
  std::vector<NodeId> Result;
  for (NodeId Holder = 0; Holder < RootEdges.Lists.size(); ++Holder)
    if (!RootEdges.Lists[Holder].empty())
      Result.push_back(Holder);
  std::sort(Result.begin(), Result.end());
  return Result;
}

const NodeList &ConstraintGraph::children(NodeId View) const {
  return assocList(ChildEdges, View);
}

const NodeList &ConstraintGraph::viewIds(NodeId View) const {
  return assocList(HasIdEdges, View);
}

const NodeList &ConstraintGraph::roots(NodeId Activity) const {
  return assocList(RootEdges, Activity);
}

const NodeList &ConstraintGraph::listeners(NodeId View) const {
  return assocList(ListenerEdges, View);
}

const NodeList &ConstraintGraph::rootsOfLayouts(NodeId View) const {
  return assocList(RootsLayoutEdges, View);
}

const NodeList &ConstraintGraph::viewsWithId(NodeId ViewIdNode) const {
  if (ViewIdNode >= ViewsByIdTable.size())
    return EmptyList;
  return ViewsByIdTable[ViewIdNode];
}

ConstraintGraph::DescCacheEntry &
ConstraintGraph::descCacheSlot(NodeId View) const {
  // Slots live in a deque, which never relocates elements on growth, so
  // the references descendantsOf hands out survive cache insertions for
  // other views; the FlatIdMap only stores the (trivially copyable) slot
  // number and may rehash freely.
  uint32_t Slot = DescCacheIndex.getOrInsert(
      View, static_cast<uint32_t>(DescStore.size()));
  if (Slot == DescStore.size())
    DescStore.emplace_back();
  return DescStore[Slot];
}

const std::vector<NodeId> &ConstraintGraph::descendantsOf(NodeId View) const {
  DescCacheEntry &Entry = descCacheSlot(View);
  if (Entry.Rev == HierarchyRev) {
    ++DescCacheHits;
    return Entry.Views;
  }
  ++DescCacheMisses;
  Entry.Rev = HierarchyRev;
  computeDescendantsInto(View, Entry.Views, DescSeenStamp, DescSeenGen);
  return Entry.Views;
}

const std::vector<NodeId> *
ConstraintGraph::descendantsCurrent(NodeId View) const {
  const uint32_t *Slot = DescCacheIndex.get(View);
  if (!Slot)
    return nullptr;
  const DescCacheEntry &Entry = DescStore[*Slot];
  return Entry.Rev == HierarchyRev ? &Entry.Views : nullptr;
}

void ConstraintGraph::computeDescendantsInto(NodeId View,
                                             std::vector<NodeId> &Out,
                                             std::vector<uint32_t> &SeenStamp,
                                             uint32_t &SeenGen) const {
  Out.clear();
  if (SeenStamp.size() < Nodes.size())
    SeenStamp.resize(Nodes.size(), 0);
  uint32_t Gen = ++SeenGen;
  if (Gen == 0) { // stamp counter wrapped: invalidate all marks
    std::fill(SeenStamp.begin(), SeenStamp.end(), 0);
    Gen = ++SeenGen;
  }
  std::vector<NodeId> Work{View};
  while (!Work.empty()) {
    NodeId Cur = Work.back();
    Work.pop_back();
    if (SeenStamp[Cur] == Gen)
      continue;
    SeenStamp[Cur] = Gen;
    Out.push_back(Cur);
    for (NodeId Child : children(Cur))
      Work.push_back(Child);
  }
}

void ConstraintGraph::seedDescendants(NodeId View,
                                      std::vector<NodeId> &&Views) const {
  DescCacheEntry &Entry = descCacheSlot(View);
  Entry.Rev = HierarchyRev;
  Entry.Views = std::move(Views);
}

//===----------------------------------------------------------------------===//
// Labels and dumps
//===----------------------------------------------------------------------===//

static std::string simpleClassName(const ClassDecl *C) {
  if (!C)
    return "?";
  const std::string &Name = C->name();
  size_t Pos = Name.rfind('.');
  return Pos == std::string::npos ? Name : Name.substr(Pos + 1);
}

std::string ConstraintGraph::label(NodeId Id) const {
  const Node &N = Nodes[Id];
  std::ostringstream OS;
  switch (N.Kind) {
  case NodeKind::Var:
    OS << N.Method->var(N.Var).Name << '@' << N.Method->qualifiedName();
    break;
  case NodeKind::Field:
    OS << N.Field->qualifiedName();
    break;
  case NodeKind::Alloc:
  case NodeKind::ViewAlloc:
    OS << "new " << simpleClassName(N.Klass);
    if (N.Loc.isValid())
      OS << '_' << N.Loc.line();
    break;
  case NodeKind::ViewInfl:
    OS << simpleClassName(N.Klass) << "~infl#" << N.InflateSite;
    if (N.LNode && N.LNode->hasViewId())
      OS << '[' << N.LNode->viewIdName() << ']';
    break;
  case NodeKind::Activity:
    OS << "act:" << simpleClassName(N.Klass);
    break;
  case NodeKind::LayoutId:
    OS << "R.layout#" << (N.Res - layout::ResourceTable::LayoutIdBase);
    break;
  case NodeKind::ViewId:
    OS << "R.id#" << (N.Res - layout::ResourceTable::ViewIdBase);
    break;
  case NodeKind::ClassConst:
    OS << "classof " << simpleClassName(N.Klass);
    break;
  case NodeKind::Op:
    OS << android::opKindName(N.Op);
    if (N.Loc.isValid())
      OS << '_' << N.Loc.line();
    break;
  case NodeKind::UnknownView:
  case NodeKind::UnknownId:
    OS << (N.Kind == NodeKind::UnknownView ? "unknown-view(" : "unknown-id(")
       << unknownReasonPhrase(N.Unknown) << ')';
    if (N.Method)
      OS << '@' << N.Method->qualifiedName();
    if (N.Loc.isValid())
      OS << '_' << N.Loc.line();
    break;
  }
  return OS.str();
}

void ConstraintGraph::dumpDot(std::ostream &OS, bool IncludeVarNodes) const {
  OS << "digraph constraints {\n  rankdir=LR;\n  node [fontsize=10];\n";
  auto include = [&](NodeId Id) {
    return IncludeVarNodes || Nodes[Id].Kind != NodeKind::Var;
  };
  for (NodeId Id = 0; Id < Nodes.size(); ++Id) {
    if (!include(Id))
      continue;
    const Node &N = Nodes[Id];
    const char *Shape = "ellipse";
    const char *Fill = "white";
    if (N.Kind == NodeKind::Op) {
      Shape = "box";
      Fill = "lightyellow";
    } else if (isViewNodeKind(N.Kind)) {
      Fill = "lightgray";
    } else if (N.Kind == NodeKind::Activity) {
      Fill = "lightblue";
    }
    OS << "  n" << Id << " [label=\"" << label(Id) << "\", shape=" << Shape
       << ", style=filled, fillcolor=" << Fill << "];\n";
  }
  for (NodeId Id = 0; Id < Nodes.size(); ++Id) {
    if (!include(Id))
      continue;
    for (NodeId To : FlowSucc[Id])
      if (include(To))
        OS << "  n" << Id << " -> n" << To << ";\n";
  }
  auto dumpAssoc = [&](const AssocEdges &E, const char *Label) {
    for (NodeId Id = 0; Id < E.Lists.size(); ++Id) {
      if (!include(Id))
        continue;
      for (NodeId To : E.Lists[Id])
        if (include(To))
          OS << "  n" << Id << " -> n" << To << " [style=dashed, label=\""
             << Label << "\"];\n";
    }
  };
  dumpAssoc(ChildEdges, "child");
  dumpAssoc(HasIdEdges, "id");
  dumpAssoc(RootEdges, "root");
  dumpAssoc(ListenerEdges, "listener");
  dumpAssoc(RootsLayoutEdges, "layout");
  OS << "}\n";
}

void ConstraintGraph::dumpStats(std::ostream &OS) const {
  size_t Counts[NumNodeKinds] = {};
  for (const Node &N : Nodes)
    ++Counts[static_cast<int>(N.Kind)];
  OS << "nodes=" << Nodes.size();
  static const NodeKind Kinds[] = {
      NodeKind::Var,      NodeKind::Field,    NodeKind::Alloc,
      NodeKind::ViewAlloc, NodeKind::ViewInfl, NodeKind::Activity,
      NodeKind::LayoutId, NodeKind::ViewId,   NodeKind::ClassConst,
      NodeKind::Op,       NodeKind::UnknownView, NodeKind::UnknownId};
  for (NodeKind K : Kinds)
    OS << ' ' << nodeKindName(K) << '=' << Counts[static_cast<int>(K)];
  OS << " flowEdges=" << NumFlowEdges
     << " parentChild=" << NumParentChild << '\n';
}
