//===- differential_test.cpp - Fused vs. phased solver ----------*- C++ -*-===//
//
// Two independently written solvers (Solver.h: fine-grained worklist;
// PhasedSolver.h: the paper's literal phase pipeline with round-based
// sweeps) must compute identical solutions. Compared per app:
//  - every flowsTo set of every graph node (matched structurally, since
//    node ids of minted ViewInfl nodes may differ between runs);
//  - the counts of every relationship-edge family;
//  - the Table 2 precision metrics.
//
//===----------------------------------------------------------------------===//

#include "analysis/PhasedSolver.h"
#include "analysis/SolutionChecker.h"
#include "corpus/ConnectBot.h"
#include "corpus/Corpus.h"

#include "DifferentialHelpers.h"
#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;
using namespace gator::graph;
using namespace gator::test;

namespace {

TEST(DifferentialTest, ConnectBotSolversAgree) {
  auto App1 = buildConnectBotExample();
  auto Fused = runAnalysis(*App1);
  auto App2 = buildConnectBotExample();
  auto Phased = runPhasedAnalysis(App2->Program, *App2->Layouts,
                                  App2->Android, AnalysisOptions(),
                                  App2->Diags);
  ASSERT_TRUE(Phased);
  expectSameSolution(*Fused, *Phased, "ConnectBot");
  EXPECT_TRUE(checkSolutionClosure(*Phased).empty());
}

TEST(DifferentialTest, ExtensionOpsAgree) {
  // Fragments + adapters + xml onClick in one app; both engines must
  // still produce the same solution.
  const char *Source = R"(
class RowAdapter extends android.widget.BaseAdapter {
  method getView(inflater: android.view.LayoutInflater): android.view.View {
    var v: android.view.View;
    var lid: int;
    lid := @layout/row;
    v := inflater.inflate(lid);
    return v;
  }
}
class HeaderFragment extends android.app.Fragment {
  method onCreateView(inflater: android.view.LayoutInflater): android.view.View {
    var v: android.widget.Button;
    v := new android.widget.Button;
    return v;
  }
}
class A extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var lvid: int;
    var lv: android.widget.ListView;
    var ad: RowAdapter;
    var fm: android.app.FragmentManager;
    var tx: android.app.FragmentTransaction;
    var fg: HeaderFragment;
    var cid: int;
    lid := @layout/main;
    this.setContentView(lid);
    lvid := @id/list;
    lv := this.findViewById(lvid);
    ad := new RowAdapter;
    lv.setAdapter(ad);
    fm := this.getFragmentManager();
    tx := fm.beginTransaction();
    fg := new HeaderFragment;
    cid := @id/root;
    tx.add(cid, fg);
  }
  method onTap(v: android.view.View) { }
}
)";
  const std::vector<std::pair<std::string, std::string>> Layouts = {
      {"main", R"(
<LinearLayout android:id="@+id/root">
  <TextView android:onClick="onTap" />
  <ListView android:id="@+id/list" />
</LinearLayout>
)"},
      {"row", "<TextView android:id=\"@+id/row_text\"/>"}};

  auto App1 = makeBundle(Source, Layouts);
  auto Fused = runAnalysis(*App1);
  auto App2 = makeBundle(Source, Layouts);
  auto Phased = runPhasedAnalysis(App2->Program, *App2->Layouts,
                                  App2->Android, AnalysisOptions(),
                                  App2->Diags);
  ASSERT_TRUE(Phased);
  expectSameSolution(*Fused, *Phased, "extensions");
}

class CorpusDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(CorpusDifferential, SolversAgree) {
  const AppSpec &Spec = paperCorpus()[GetParam()];

  GeneratedApp App1 = generateApp(Spec);
  auto Fused = runAnalysis(*App1.Bundle);

  GeneratedApp App2 = generateApp(Spec);
  auto Phased =
      runPhasedAnalysis(App2.Bundle->Program, *App2.Bundle->Layouts,
                        App2.Bundle->Android, AnalysisOptions(),
                        App2.Bundle->Diags);
  ASSERT_TRUE(Phased);

  expectSameSolution(*Fused, *Phased, Spec.Name);
  // The phased result is itself a closed fixed point.
  EXPECT_TRUE(checkSolutionClosure(*Phased).empty()) << Spec.Name;
}

TEST_P(CorpusDifferential, SolversAgreeUnderTypeFilter) {
  const AppSpec &Spec = paperCorpus()[GetParam()];
  AnalysisOptions Options;
  Options.DeclaredTypeFilter = true;

  GeneratedApp App1 = generateApp(Spec);
  auto Fused = runAnalysis(*App1.Bundle, Options);

  GeneratedApp App2 = generateApp(Spec);
  auto Phased =
      runPhasedAnalysis(App2.Bundle->Program, *App2.Bundle->Layouts,
                        App2.Bundle->Android, Options, App2.Bundle->Diags);
  ASSERT_TRUE(Phased);
  expectSameSolution(*Fused, *Phased, Spec.Name + "+filter");
}

INSTANTIATE_TEST_SUITE_P(AllCorpusApps, CorpusDifferential,
                         ::testing::Range<size_t>(0, 20),
                         [](const ::testing::TestParamInfo<size_t> &Info) {
                           return paperCorpus()[Info.param].Name;
                         });

} // namespace
