//===- ConstraintGraph.cpp - The GUI constraint graph -----------*- C++ -*-===//

#include "graph/ConstraintGraph.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace gator;
using namespace gator::graph;
using namespace gator::ir;

const char *gator::graph::nodeKindName(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::Var:
    return "Var";
  case NodeKind::Field:
    return "Field";
  case NodeKind::Alloc:
    return "Alloc";
  case NodeKind::ViewAlloc:
    return "ViewAlloc";
  case NodeKind::ViewInfl:
    return "ViewInfl";
  case NodeKind::Activity:
    return "Activity";
  case NodeKind::LayoutId:
    return "LayoutId";
  case NodeKind::ViewId:
    return "ViewId";
  case NodeKind::ClassConst:
    return "ClassConst";
  case NodeKind::Op:
    return "Op";
  }
  return "unknown";
}

bool gator::graph::isValueNodeKind(NodeKind Kind) {
  switch (Kind) {
  case NodeKind::Alloc:
  case NodeKind::ViewAlloc:
  case NodeKind::ViewInfl:
  case NodeKind::Activity:
  case NodeKind::LayoutId:
  case NodeKind::ViewId:
  case NodeKind::ClassConst:
    return true;
  default:
    return false;
  }
}

bool gator::graph::isViewNodeKind(NodeKind Kind) {
  return Kind == NodeKind::ViewAlloc || Kind == NodeKind::ViewInfl;
}

//===----------------------------------------------------------------------===//
// Node factories
//===----------------------------------------------------------------------===//

NodeId ConstraintGraph::push(Node N) {
  Nodes.push_back(std::move(N));
  FlowSucc.emplace_back();
  return static_cast<NodeId>(Nodes.size() - 1);
}

NodeId ConstraintGraph::getVarNode(const MethodDecl *M, VarId V) {
  auto &PerMethod = VarNodes[M];
  auto It = PerMethod.find(V);
  if (It != PerMethod.end())
    return It->second;
  Node N;
  N.Kind = NodeKind::Var;
  N.Method = M;
  N.Var = V;
  NodeId Id = push(std::move(N));
  PerMethod.emplace(V, Id);
  return Id;
}

NodeId ConstraintGraph::getFieldNode(const FieldDecl *F) {
  auto It = FieldNodes.find(F);
  if (It != FieldNodes.end())
    return It->second;
  Node N;
  N.Kind = NodeKind::Field;
  N.Field = F;
  NodeId Id = push(std::move(N));
  FieldNodes.emplace(F, Id);
  return Id;
}

NodeId ConstraintGraph::getAllocNode(const MethodDecl *M, int32_t StmtIndex,
                                     const ClassDecl *Klass, bool IsView,
                                     SourceLocation Loc) {
  auto &PerMethod = AllocNodes[M];
  auto It = PerMethod.find(StmtIndex);
  if (It != PerMethod.end())
    return It->second;
  Node N;
  N.Kind = IsView ? NodeKind::ViewAlloc : NodeKind::Alloc;
  N.Method = M;
  N.StmtIndex = StmtIndex;
  N.Klass = Klass;
  N.Loc = std::move(Loc);
  NodeId Id = push(std::move(N));
  PerMethod.emplace(StmtIndex, Id);
  return Id;
}

NodeId ConstraintGraph::getActivityNode(const ClassDecl *Klass) {
  auto It = ActivityNodes.find(Klass);
  if (It != ActivityNodes.end())
    return It->second;
  Node N;
  N.Kind = NodeKind::Activity;
  N.Klass = Klass;
  NodeId Id = push(std::move(N));
  ActivityNodes.emplace(Klass, Id);
  return Id;
}

NodeId ConstraintGraph::getLayoutIdNode(layout::ResourceId Res) {
  auto It = LayoutIdNodes.find(Res);
  if (It != LayoutIdNodes.end())
    return It->second;
  Node N;
  N.Kind = NodeKind::LayoutId;
  N.Res = Res;
  NodeId Id = push(std::move(N));
  LayoutIdNodes.emplace(Res, Id);
  return Id;
}

NodeId ConstraintGraph::getViewIdNode(layout::ResourceId Res) {
  auto It = ViewIdNodes.find(Res);
  if (It != ViewIdNodes.end())
    return It->second;
  Node N;
  N.Kind = NodeKind::ViewId;
  N.Res = Res;
  NodeId Id = push(std::move(N));
  ViewIdNodes.emplace(Res, Id);
  return Id;
}

NodeId ConstraintGraph::getClassConstNode(const ClassDecl *Klass) {
  auto It = ClassConstNodes.find(Klass);
  if (It != ClassConstNodes.end())
    return It->second;
  Node N;
  N.Kind = NodeKind::ClassConst;
  N.Klass = Klass;
  NodeId Id = push(std::move(N));
  ClassConstNodes.emplace(Klass, Id);
  return Id;
}

NodeId ConstraintGraph::makeOpNode(android::OpKind Kind, SourceLocation Loc,
                                   const android::ListenerSpec *Listener,
                                   bool ChildOnly) {
  Node N;
  N.Kind = NodeKind::Op;
  N.Op = Kind;
  N.Listener = Listener;
  N.ChildOnly = ChildOnly;
  N.Loc = std::move(Loc);
  return push(std::move(N));
}

NodeId ConstraintGraph::makeViewInflNode(const ClassDecl *Klass,
                                         const layout::LayoutNode *LNode,
                                         NodeId Site) {
  Node N;
  N.Kind = NodeKind::ViewInfl;
  N.Klass = Klass;
  N.LNode = LNode;
  N.InflateSite = Site;
  return push(std::move(N));
}

std::vector<NodeId> ConstraintGraph::nodesOfKind(NodeKind Kind) const {
  std::vector<NodeId> Result;
  for (NodeId Id = 0; Id < Nodes.size(); ++Id)
    if (Nodes[Id].Kind == Kind)
      Result.push_back(Id);
  return Result;
}

//===----------------------------------------------------------------------===//
// Edges
//===----------------------------------------------------------------------===//

bool ConstraintGraph::addFlowEdge(NodeId From, NodeId To) {
  assert(From < Nodes.size() && To < Nodes.size() && "dangling node id");
  if (!FlowEdges.insert(edgeKey(From, To)).second)
    return false;
  FlowSucc[From].push_back(To);
  return true;
}

bool ConstraintGraph::addAssocEdge(
    std::unordered_map<NodeId, std::vector<NodeId>> &Map,
    std::unordered_set<uint64_t> &Dedup, NodeId From, NodeId To) {
  assert(From < Nodes.size() && To < Nodes.size() && "dangling node id");
  if (!Dedup.insert(edgeKey(From, To)).second)
    return false;
  Map[From].push_back(To);
  return true;
}

bool ConstraintGraph::addParentChildEdge(NodeId Parent, NodeId Child) {
  assert(isViewNodeKind(Nodes[Parent].Kind) &&
         isViewNodeKind(Nodes[Child].Kind) &&
         "parent-child edges connect view nodes");
  bool Added = addAssocEdge(ChildMap, ChildDedup, Parent, Child);
  if (Added)
    ++NumParentChild;
  return Added;
}

bool ConstraintGraph::addHasIdEdge(NodeId View, NodeId ViewIdNode) {
  assert(isViewNodeKind(Nodes[View].Kind) && "has-id edge from non-view");
  assert(Nodes[ViewIdNode].Kind == NodeKind::ViewId && "target not a ViewId");
  return addAssocEdge(HasIdMap, HasIdDedup, View, ViewIdNode);
}

bool ConstraintGraph::addRootEdge(NodeId Activity, NodeId View) {
  assert(isViewNodeKind(Nodes[View].Kind) && "root edge to non-view");
  return addAssocEdge(RootMap, RootDedup, Activity, View);
}

bool ConstraintGraph::addListenerEdge(NodeId View, NodeId ListenerValue) {
  assert(isViewNodeKind(Nodes[View].Kind) && "listener edge from non-view");
  return addAssocEdge(ListenerMap, ListenerDedup, View, ListenerValue);
}

bool ConstraintGraph::addRootsLayoutEdge(NodeId View, NodeId LayoutIdNode) {
  assert(Nodes[LayoutIdNode].Kind == NodeKind::LayoutId &&
         "target not a LayoutId");
  return addAssocEdge(RootsLayoutMap, RootsLayoutDedup, View, LayoutIdNode);
}

std::vector<NodeId> ConstraintGraph::rootHolders() const {
  std::vector<NodeId> Result;
  for (const auto &[Holder, Roots] : RootMap)
    if (!Roots.empty())
      Result.push_back(Holder);
  std::sort(Result.begin(), Result.end());
  return Result;
}

const std::vector<NodeId> &ConstraintGraph::children(NodeId View) const {
  auto It = ChildMap.find(View);
  return It == ChildMap.end() ? EmptyList : It->second;
}

const std::vector<NodeId> &ConstraintGraph::viewIds(NodeId View) const {
  auto It = HasIdMap.find(View);
  return It == HasIdMap.end() ? EmptyList : It->second;
}

const std::vector<NodeId> &ConstraintGraph::roots(NodeId Activity) const {
  auto It = RootMap.find(Activity);
  return It == RootMap.end() ? EmptyList : It->second;
}

const std::vector<NodeId> &ConstraintGraph::listeners(NodeId View) const {
  auto It = ListenerMap.find(View);
  return It == ListenerMap.end() ? EmptyList : It->second;
}

const std::vector<NodeId> &
ConstraintGraph::rootsOfLayouts(NodeId View) const {
  auto It = RootsLayoutMap.find(View);
  return It == RootsLayoutMap.end() ? EmptyList : It->second;
}

std::vector<NodeId> ConstraintGraph::descendantsOf(NodeId View) const {
  std::vector<NodeId> Result;
  std::unordered_set<NodeId> Seen;
  std::vector<NodeId> Work{View};
  while (!Work.empty()) {
    NodeId Cur = Work.back();
    Work.pop_back();
    if (!Seen.insert(Cur).second)
      continue;
    Result.push_back(Cur);
    for (NodeId Child : children(Cur))
      Work.push_back(Child);
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Labels and dumps
//===----------------------------------------------------------------------===//

static std::string simpleClassName(const ClassDecl *C) {
  if (!C)
    return "?";
  const std::string &Name = C->name();
  size_t Pos = Name.rfind('.');
  return Pos == std::string::npos ? Name : Name.substr(Pos + 1);
}

std::string ConstraintGraph::label(NodeId Id) const {
  const Node &N = Nodes[Id];
  std::ostringstream OS;
  switch (N.Kind) {
  case NodeKind::Var:
    OS << N.Method->var(N.Var).Name << '@' << N.Method->qualifiedName();
    break;
  case NodeKind::Field:
    OS << N.Field->qualifiedName();
    break;
  case NodeKind::Alloc:
  case NodeKind::ViewAlloc:
    OS << "new " << simpleClassName(N.Klass);
    if (N.Loc.isValid())
      OS << '_' << N.Loc.line();
    break;
  case NodeKind::ViewInfl:
    OS << simpleClassName(N.Klass) << "~infl#" << N.InflateSite;
    if (N.LNode && N.LNode->hasViewId())
      OS << '[' << N.LNode->viewIdName() << ']';
    break;
  case NodeKind::Activity:
    OS << "act:" << simpleClassName(N.Klass);
    break;
  case NodeKind::LayoutId:
    OS << "R.layout#" << (N.Res - layout::ResourceTable::LayoutIdBase);
    break;
  case NodeKind::ViewId:
    OS << "R.id#" << (N.Res - layout::ResourceTable::ViewIdBase);
    break;
  case NodeKind::ClassConst:
    OS << "classof " << simpleClassName(N.Klass);
    break;
  case NodeKind::Op:
    OS << android::opKindName(N.Op);
    if (N.Loc.isValid())
      OS << '_' << N.Loc.line();
    break;
  }
  return OS.str();
}

void ConstraintGraph::dumpDot(std::ostream &OS, bool IncludeVarNodes) const {
  OS << "digraph constraints {\n  rankdir=LR;\n  node [fontsize=10];\n";
  auto include = [&](NodeId Id) {
    return IncludeVarNodes || Nodes[Id].Kind != NodeKind::Var;
  };
  for (NodeId Id = 0; Id < Nodes.size(); ++Id) {
    if (!include(Id))
      continue;
    const Node &N = Nodes[Id];
    const char *Shape = "ellipse";
    const char *Fill = "white";
    if (N.Kind == NodeKind::Op) {
      Shape = "box";
      Fill = "lightyellow";
    } else if (isViewNodeKind(N.Kind)) {
      Fill = "lightgray";
    } else if (N.Kind == NodeKind::Activity) {
      Fill = "lightblue";
    }
    OS << "  n" << Id << " [label=\"" << label(Id) << "\", shape=" << Shape
       << ", style=filled, fillcolor=" << Fill << "];\n";
  }
  for (NodeId Id = 0; Id < Nodes.size(); ++Id) {
    if (!include(Id))
      continue;
    for (NodeId To : FlowSucc[Id])
      if (include(To))
        OS << "  n" << Id << " -> n" << To << ";\n";
  }
  auto dumpAssoc = [&](const std::unordered_map<NodeId, std::vector<NodeId>>
                           &Map,
                       const char *Label) {
    for (NodeId Id = 0; Id < Nodes.size(); ++Id) {
      auto It = Map.find(Id);
      if (It == Map.end() || !include(Id))
        continue;
      for (NodeId To : It->second)
        if (include(To))
          OS << "  n" << Id << " -> n" << To << " [style=dashed, label=\""
             << Label << "\"];\n";
    }
  };
  dumpAssoc(ChildMap, "child");
  dumpAssoc(HasIdMap, "id");
  dumpAssoc(RootMap, "root");
  dumpAssoc(ListenerMap, "listener");
  dumpAssoc(RootsLayoutMap, "layout");
  OS << "}\n";
}

void ConstraintGraph::dumpStats(std::ostream &OS) const {
  size_t Counts[10] = {};
  for (const Node &N : Nodes)
    ++Counts[static_cast<int>(N.Kind)];
  OS << "nodes=" << Nodes.size();
  static const NodeKind Kinds[] = {
      NodeKind::Var,      NodeKind::Field,    NodeKind::Alloc,
      NodeKind::ViewAlloc, NodeKind::ViewInfl, NodeKind::Activity,
      NodeKind::LayoutId, NodeKind::ViewId,   NodeKind::ClassConst,
      NodeKind::Op};
  for (NodeKind K : Kinds)
    OS << ' ' << nodeKindName(K) << '=' << Counts[static_cast<int>(K)];
  OS << " flowEdges=" << FlowEdges.size()
     << " parentChild=" << NumParentChild << '\n';
}
