//===- bench_parallel.cpp - Strong-scaling sweep of the batch engine ------===//
//
// Measures the parallel batch-analysis engine (docs/PARALLEL.md) end to
// end: the 20-app paper corpus and a synthetic 200-app batch, each swept
// over 1/2/4/8 workers. Reports wall time, speedup vs -j 1, parallel
// efficiency, and the per-worker task split, and cross-checks that the
// aggregate solver counters are identical at every job count (the
// determinism contract — parallelism must never change a result).
//
// Results are recorded in bench/BENCH_parallel.json. On a single-core
// container the sweep degenerates to an overhead measurement: every job
// count should take about the -j 1 time (the scheduler just interleaves),
// and the counter cross-check is the meaningful signal.
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"
#include "corpus/BatchRunner.h"
#include "corpus/FleetReport.h"
#include "support/Metrics.h"
#include "support/Timer.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;
using namespace gator::support;

namespace {

/// The synthetic 200-app batch: small apps (a few activities each) whose
/// per-app solve is quick, so scheduling overhead is a visible fraction —
/// the stress case for the task queue rather than the solver.
std::vector<AppSpec> syntheticBatch(unsigned Count) {
  std::vector<AppSpec> Specs;
  Specs.reserve(Count);
  for (unsigned I = 0; I < Count; ++I) {
    AppSpec Spec;
    Spec.Name = "Synth" + std::to_string(I);
    Spec.Seed = 1000 + I;
    Spec.Activities = 2 + I % 3;
    Spec.FillerClasses = 4;
    Spec.ViewsPerLayout = 6;
    Spec.IdsPerLayout = 4;
    Spec.DirectFindsPerActivity = 2;
    Spec.ListenersPerActivity = 1;
    Spec.ProgViewsPerActivity = 1;
    Specs.push_back(Spec);
  }
  return Specs;
}

/// One counter line summing the whole batch; any divergence across job
/// counts is a determinism bug.
std::string aggregateLine(const std::vector<BatchAppResult> &Batch) {
  std::vector<AppStats> PerApp;
  for (const BatchAppResult &R : Batch)
    if (!R.GenerationFailed)
      PerApp.push_back(R.Stats);
  AppStats A = aggregateAppStats("TOTAL", PerApp);
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "apps=%zu propagate=%lu opFire=%lu pushed=%lu work=%lu "
                "unresolved=%lu",
                PerApp.size(), A.Propagations, A.OpFirings, A.ValuesPushed,
                A.WorkCharged, A.UnresolvedOps);
  return Buf;
}

struct SweepPoint {
  unsigned Jobs = 1;
  double Seconds = 0.0;
  unsigned long long PeakRssBytes = 0; ///< process high-water after the point
  std::vector<unsigned long> TasksPerWorker;
  std::string Counters;
};

std::vector<SweepPoint> sweep(const char *Label,
                              const std::vector<AppSpec> &Specs,
                              const std::vector<unsigned> &JobValues,
                              std::vector<BatchAppResult> *KeepLast = nullptr) {
  std::printf("%s (%zu apps)\n", Label, Specs.size());
  std::printf("%6s %10s %9s %11s  %s\n", "jobs", "time(s)", "speedup",
              "efficiency", "tasks/worker");
  std::vector<SweepPoint> Points;
  double Baseline = 0.0;
  for (unsigned Jobs : JobValues) {
    AnalysisOptions Options;
    Options.Jobs = Jobs;
    ParallelForStats Stats;
    Timer T;
    std::vector<BatchAppResult> Batch =
        analyzeCorpus(Specs, Options, &Stats, /*KeepArtifacts=*/false);
    SweepPoint P;
    P.Jobs = Jobs;
    P.Seconds = T.seconds();
    P.PeakRssBytes = currentPeakRssBytes();
    P.TasksPerWorker = Stats.TasksPerWorker;
    P.Counters = aggregateLine(Batch);
    if (Points.empty())
      Baseline = P.Seconds;
    double Speedup = Baseline / P.Seconds;
    std::string Split;
    for (unsigned long C : P.TasksPerWorker)
      Split += (Split.empty() ? "" : "/") + std::to_string(C);
    std::printf("%6u %10.3f %8.2fx %10.0f%%  %s\n", Jobs, P.Seconds, Speedup,
                100.0 * Speedup / Stats.WorkersUsed, Split.c_str());
    Points.push_back(std::move(P));
    if (KeepLast)
      *KeepLast = std::move(Batch);
  }
  bool CountersAgree = true;
  for (const SweepPoint &P : Points)
    CountersAgree &= P.Counters == Points.front().Counters;
  std::printf("counters: %s -> %s\n\n", Points.front().Counters.c_str(),
              CountersAgree ? "identical at every job count"
                            : "DIVERGED (determinism bug!)");
  return Points;
}

struct CachePoint {
  unsigned Jobs = 1;
  double ColdSeconds = 0.0;
  double WarmSeconds = 0.0;
  double EditSeconds = 0.0;
  unsigned long long WarmHits = 0;
  unsigned long long EditMisses = 0;
};

/// Cold/warm/edit sweep of the content-addressed solution cache
/// (docs/INCREMENTAL.md) over one spec list. Per job count: a fresh cache
/// is populated cold, replayed warm (every app a hit; the aggregate
/// counters must match the cold pass exactly), then hit with an "edited"
/// fleet — 1% of specs changed — where only the edited apps re-solve.
std::vector<CachePoint> cacheSweep(const std::vector<AppSpec> &Specs,
                                   const std::vector<unsigned> &JobValues) {
  std::vector<AppSpec> Edited = Specs;
  unsigned EditedApps = 0;
  for (size_t I = 0; I < Edited.size(); I += 100) {
    Edited[I].DirectFindsPerActivity += 1;
    ++EditedApps;
  }
  std::printf("solution-cache sweep (%zu apps, %u edited in the edit pass)\n",
              Specs.size(), EditedApps);
  std::printf("%6s %10s %10s %9s %10s\n", "jobs", "cold(s)", "warm(s)",
              "speedup", "edit(s)");
  std::vector<CachePoint> Points;
  for (unsigned Jobs : JobValues) {
    AnalysisOptions Options;
    Options.Jobs = Jobs;
    // Memory tier sized to the fleet so the warm pass measures replay,
    // not FIFO churn.
    analysis::SolutionCache Cache("", Specs.size() + 64);
    CachePoint P;
    P.Jobs = Jobs;
    Timer TC;
    std::vector<BatchAppResult> Cold = analyzeCorpus(
        Specs, Options, nullptr, /*KeepArtifacts=*/false, &Cache);
    P.ColdSeconds = TC.seconds();
    const unsigned long long ColdMisses = Cache.misses();
    Timer TW;
    std::vector<BatchAppResult> Warm = analyzeCorpus(
        Specs, Options, nullptr, /*KeepArtifacts=*/false, &Cache);
    P.WarmSeconds = TW.seconds();
    P.WarmHits = Cache.hits();
    Timer TE;
    std::vector<BatchAppResult> Edit = analyzeCorpus(
        Edited, Options, nullptr, /*KeepArtifacts=*/false, &Cache);
    P.EditSeconds = TE.seconds();
    P.EditMisses = Cache.misses() - ColdMisses;
    std::printf("%6u %10.3f %10.3f %8.1fx %10.3f\n", Jobs, P.ColdSeconds,
                P.WarmSeconds, P.ColdSeconds / P.WarmSeconds, P.EditSeconds);
    if (aggregateLine(Warm) != aggregateLine(Cold))
      std::printf("  WARM COUNTERS DIVERGED from cold (replay bug!)\n");
    if (P.WarmHits != Specs.size())
      std::printf("  warm hits %llu != %zu apps (eligibility bug?)\n",
                  P.WarmHits, Specs.size());
    if (P.EditMisses != EditedApps)
      std::printf("  edit pass missed %llu apps, expected %u\n", P.EditMisses,
                  EditedApps);
    Points.push_back(P);
  }
  std::printf("\n");
  return Points;
}

//===----------------------------------------------------------------------===//
// Intra-solve strong scaling (--solve-scaling; docs/PARALLEL.md,
// "Inside one solve")
//===----------------------------------------------------------------------===//

/// Deep-tree shape: one app whose per-activity layouts are large and
/// inflated item layouts multiply them — flow-set volume and the XML
/// onClick sweep dominate, the regime the descendants prewarm targets.
AppSpec deepTreeSpec() {
  AppSpec Spec;
  Spec.Name = "SolveDeep";
  Spec.Seed = 41;
  Spec.Activities = 16;
  Spec.ViewsPerLayout = 36;
  Spec.IdsPerLayout = 18;
  Spec.DirectFindsPerActivity = 5;
  Spec.InflateItemsPerActivity = 2;
  Spec.ListenersPerActivity = 2;
  Spec.FillerClasses = 8;
  Spec.UseDialog = true;
  Spec.UseFragment = true;
  Spec.UseFlipper = true;
  return Spec;
}

/// Wide-listener shape: listener fan-out and shared-helper aliasing blow
/// the value worklist wide — the regime the snapshot classifier targets.
AppSpec wideListenerSpec() {
  AppSpec Spec;
  Spec.Name = "SolveWide";
  Spec.Seed = 42;
  Spec.Activities = 16;
  Spec.ViewsPerLayout = 14;
  Spec.IdsPerLayout = 9;
  Spec.ListenersPerActivity = 8;
  Spec.ProgViewsPerActivity = 2;
  Spec.SharedFindsPerActivity = 3;
  Spec.SharedHelperUsers = 16;
  Spec.FillerClasses = 8;
  return Spec;
}

struct SolvePoint {
  unsigned Jobs = 1;
  double SolveSeconds = 0.0; ///< best-of-iters fixpoint wall-clock
  std::string Counters;
  unsigned long ParallelRounds = 0;
  unsigned long TrustedAppends = 0;
  unsigned long TrustedDups = 0;
  unsigned long BarrierWaves = 0;
  unsigned long BarrierStalls = 0;
  unsigned long SccCount = 0;
  unsigned long SccStrata = 0;
};

/// Sweeps SolveJobs over one app shape. Each iteration regenerates the
/// bundle (analysis mutates shared registry state) and times the solve
/// phase alone; the point keeps the best of \p Iters runs. The counter
/// line cross-checks the replay contract: every scheduling-independent
/// counter must be identical at every job count.
std::vector<SolvePoint> solveScalingSweep(const char *Label,
                                          const AppSpec &Spec,
                                          const std::vector<unsigned> &Jobs,
                                          unsigned Iters) {
  std::printf("%s (1 app x %u iters per point)\n", Label, Iters);
  std::printf("%6s %12s %9s %11s  %s\n", "jobs", "solve(s)", "speedup",
              "par-rounds", "trusted appends+dups / waves(stalls)");
  std::vector<SolvePoint> Points;
  double Baseline = 0.0;
  for (unsigned J : Jobs) {
    SolvePoint P;
    P.Jobs = J;
    P.SolveSeconds = 1e30;
    for (unsigned I = 0; I < Iters; ++I) {
      GeneratedApp App = generateApp(Spec);
      AnalysisOptions Options;
      Options.SolveJobs = J;
      auto R = analysis::GuiAnalysis::run(App.Bundle->Program,
                                          *App.Bundle->Layouts,
                                          App.Bundle->Android, Options,
                                          App.Bundle->Diags);
      if (!R)
        continue;
      if (R->SolveSeconds < P.SolveSeconds)
        P.SolveSeconds = R->SolveSeconds;
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf),
                    "propagate=%lu opFire=%lu pushed=%lu dedup=%lu work=%lu",
                    R->Stats.Propagations, R->Stats.OpFirings,
                    R->Stats.ValuesPushed, R->Stats.DedupHits,
                    R->Stats.WorkCharged);
      P.Counters = Buf;
      P.ParallelRounds = R->Stats.ParallelRounds;
      P.TrustedAppends = R->Stats.TrustedAppends;
      P.TrustedDups = R->Stats.TrustedDups;
      P.BarrierWaves = R->Stats.BarrierWaves;
      P.BarrierStalls = R->Stats.BarrierStalls;
      P.SccCount = R->Stats.SccCount;
      P.SccStrata = R->Stats.SccStrata;
    }
    if (Points.empty())
      Baseline = P.SolveSeconds;
    std::printf("%6u %12.4f %8.2fx %11lu  %lu+%lu / %lu(%lu)\n", J,
                P.SolveSeconds, Baseline / P.SolveSeconds, P.ParallelRounds,
                P.TrustedAppends, P.TrustedDups, P.BarrierWaves,
                P.BarrierStalls);
    Points.push_back(std::move(P));
  }
  bool CountersAgree = true;
  for (const SolvePoint &P : Points)
    CountersAgree &= P.Counters == Points.front().Counters;
  std::printf("counters: %s -> %s\n",
              Points.front().Counters.c_str(),
              CountersAgree ? "identical at every solve-jobs value"
                            : "DIVERGED (replay bug!)");
  const SolvePoint &Engaged = Points.back();
  std::printf("condensation at j%u: %lu SCCs in %lu strata\n\n", Engaged.Jobs,
              Engaged.SccCount, Engaged.SccStrata);
  return Points;
}

struct EditMicro {
  double ScratchSeconds = 0.0;
  double IncSeconds = 0.0;
  unsigned long IncPropagations = 0;
  unsigned long ScratchPropagations = 0;
};

/// Edit-scale micro-measure: one layout edit re-solved incrementally
/// (DRed retract + re-derive) vs a from-scratch solve of the edited app.
EditMicro editScaleMicro() {
  EditMicro M;
  AppSpec Spec = paperCorpus().front();
  GeneratedApp App = generateApp(Spec);
  corpus::AppBundle &B = *App.Bundle;
  analysis::IncrementalAnalysis Inc(B.Program, *B.Layouts, B.Android, {},
                                    B.Diags);
  Inc.solveInitial();
  // Reverse the child order of the first editable layout.
  for (const auto &Def : B.Layouts->layouts()) {
    if (!Def->root())
      continue;
    auto NewRoot = Def->root()->clone();
    auto Children = NewRoot->takeChildren();
    for (auto It = Children.rbegin(); It != Children.rend(); ++It)
      NewRoot->addChild(std::move(*It));
    Timer TI;
    if (!Inc.reanalyzeLayout(Def->name(), std::move(NewRoot)))
      continue; // include target; try the next layout
    M.IncSeconds = TI.seconds();
    M.IncPropagations = Inc.lastStats().Propagations;
    break;
  }
  AnalysisOptions ScratchOptions;
  ScratchOptions.RecordProvenance = false;
  Timer TS;
  auto Scratch = analysis::GuiAnalysis::run(B.Program, *B.Layouts, B.Android,
                                            ScratchOptions, B.Diags);
  M.ScratchSeconds = TS.seconds();
  if (Scratch)
    M.ScratchPropagations = Scratch->Stats.Propagations;
  std::printf("edit-scale micro (1 layout edit, %s): incremental %.4fs "
              "(%lu propagations) vs scratch %.4fs (%lu propagations)\n\n",
              Spec.Name.c_str(), M.IncSeconds, M.IncPropagations,
              M.ScratchSeconds, M.ScratchPropagations);
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  // --fleet N      size of the generated fleet sweep (0 disables; default
  //                10000 — the memory-bound regime of docs/MEMORY.md)
  // --fleet-only   skip the corpus/synthetic sweeps (fresh-process fleet
  //                numbers: peak RSS is attributable to the fleet alone)
  // --jobs A,B,..  job counts to sweep (default 1,2,4,8)
  // --hostile [P]  hostile-shape rates for the fleet (docs/ROBUSTNESS.md):
  //                P percent of apps (default 20) draw reflective
  //                construction, dynamic find ids, and missing-layout
  //                references each; such apps analyze as DegradedInput
  // --cache        replace the scaling sweep with the solution-cache
  //                cold/warm/edit sweep over the fleet plus the
  //                edit-scale incremental micro-measure
  //                (docs/INCREMENTAL.md); results go to
  //                bench/BENCH_incremental.json
  // --solve-scaling  replace the batch sweeps with the intra-solve
  //                strong-scaling sweep: one deep-tree app and one
  //                wide-listener app, each solved at --jobs values of
  //                SolveJobs (docs/PARALLEL.md, "Inside one solve");
  //                results go to bench/BENCH_solve_parallel.json
  // --ledger-out F write the fleet sweep's run ledger to F: one JSONL
  //                wide-event record per generated app
  //                (docs/OBSERVABILITY.md, "Run ledger & reports");
  //                inspect with `gator_cli report F`
  unsigned FleetApps = 10000;
  bool FleetOnly = false;
  bool CacheMode = false;
  bool SolveScaling = false;
  unsigned HostilePercent = 0;
  const char *LedgerOut = nullptr;
  std::vector<unsigned> JobValues = {1, 2, 4, 8};
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--fleet") && I + 1 < Argc)
      FleetApps = static_cast<unsigned>(std::atoi(Argv[++I]));
    else if (!std::strcmp(Argv[I], "--ledger-out") && I + 1 < Argc)
      LedgerOut = Argv[++I];
    else if (!std::strcmp(Argv[I], "--fleet-only"))
      FleetOnly = true;
    else if (!std::strcmp(Argv[I], "--cache"))
      CacheMode = true;
    else if (!std::strcmp(Argv[I], "--solve-scaling"))
      SolveScaling = true;
    else if (!std::strcmp(Argv[I], "--hostile"))
      HostilePercent = (I + 1 < Argc &&
                        std::isdigit(static_cast<unsigned char>(*Argv[I + 1])))
                           ? static_cast<unsigned>(std::atoi(Argv[++I]))
                           : 20;
    else if (!std::strcmp(Argv[I], "--jobs") && I + 1 < Argc) {
      JobValues.clear();
      for (const char *P = Argv[++I]; *P;) {
        JobValues.push_back(static_cast<unsigned>(std::strtoul(P, nullptr, 10)));
        while (*P && *P != ',')
          ++P;
        if (*P == ',')
          ++P;
      }
    }
  }

  if (SolveScaling) {
    std::printf("Intra-solve strong-scaling sweep "
                "(docs/PARALLEL.md, \"Inside one solve\")\n");
    std::printf("hardware concurrency: %u\n\n",
                std::thread::hardware_concurrency());
    const unsigned Iters = 5;
    std::vector<SolvePoint> Deep =
        solveScalingSweep("deep-tree app", deepTreeSpec(), JobValues, Iters);
    std::vector<SolvePoint> Wide = solveScalingSweep(
        "wide-listener app", wideListenerSpec(), JobValues, Iters);
    // Machine-readable tail for bench/BENCH_solve_parallel.json.
    std::printf("json: {");
    const char *Sep = "";
    struct Series {
      const char *Name;
      const std::vector<SolvePoint> *Points;
    };
    for (const Series &S :
         {Series{"deep_tree", &Deep}, Series{"wide_listener", &Wide}}) {
      std::printf("%s\"%s\": {", Sep, S.Name);
      const char *Inner = "";
      for (const SolvePoint &P : *S.Points) {
        std::printf("%s\"j%u\": {\"solve\": %.6f, \"rounds\": %lu, "
                    "\"trusted\": %lu, \"waves\": %lu, \"stalls\": %lu}",
                    Inner, P.Jobs, P.SolveSeconds, P.ParallelRounds,
                    P.TrustedAppends + P.TrustedDups, P.BarrierWaves,
                    P.BarrierStalls);
        Inner = ", ";
      }
      const SolvePoint &Last = S.Points->back();
      std::printf("%s\"scc_count\": %lu, \"scc_strata\": %lu}", Inner,
                  Last.SccCount, Last.SccStrata);
      Sep = ", ";
    }
    std::printf("}\n");
    return 0;
  }

  if (CacheMode) {
    std::printf("Solution-cache cold/warm/edit sweep "
                "(docs/INCREMENTAL.md)\n");
    std::printf("hardware concurrency: %u\n\n",
                std::thread::hardware_concurrency());
    FleetSpec FS;
    FS.Apps = FleetApps;
    std::vector<CachePoint> Points = cacheSweep(makeFleet(FS), JobValues);
    EditMicro Micro = editScaleMicro();
    // Machine-readable tail for bench/BENCH_incremental.json.
    std::printf("json: {\"apps\": %u, \"sweep\": {", FleetApps);
    const char *Sep = "";
    for (const CachePoint &P : Points) {
      std::printf("%s\"j%u\": {\"cold\": %.4f, \"warm\": %.4f, "
                  "\"edit\": %.4f, \"warm_speedup\": %.1f}",
                  Sep, P.Jobs, P.ColdSeconds, P.WarmSeconds, P.EditSeconds,
                  P.ColdSeconds / P.WarmSeconds);
      Sep = ", ";
    }
    std::printf("}, \"edit_micro\": {\"incremental\": %.6f, "
                "\"scratch\": %.6f, \"incremental_propagations\": %lu, "
                "\"scratch_propagations\": %lu}}\n",
                Micro.IncSeconds, Micro.ScratchSeconds, Micro.IncPropagations,
                Micro.ScratchPropagations);
    return 0;
  }

  std::printf("Strong-scaling sweep of the parallel batch engine "
              "(docs/PARALLEL.md)\n");
  std::printf("hardware concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  std::vector<SweepPoint> Corpus, Synthetic, Fleet;
  if (!FleetOnly) {
    Corpus = sweep("paper corpus", paperCorpus(), JobValues);
    Synthetic = sweep("synthetic batch", syntheticBatch(200), JobValues);
  }
  if (FleetApps) {
    FleetSpec FS;
    FS.Apps = FleetApps;
    FS.ReflectivePercent = HostilePercent;
    FS.DynamicIdPercent = HostilePercent;
    FS.MissingLayoutPercent = HostilePercent;
    const std::vector<AppSpec> FleetSpecs = makeFleet(FS);
    std::vector<BatchAppResult> LastBatch;
    Fleet = sweep(HostilePercent ? "generated fleet (hostile)"
                                 : "generated fleet",
                  FleetSpecs, JobValues, LedgerOut ? &LastBatch : nullptr);
    const SweepPoint &P0 = Fleet.front();
    std::printf("fleet throughput at -j%u: %.1f apps/s, peak RSS %.1f MiB "
                "(%.1f KiB/app)\n\n",
                P0.Jobs, FleetApps / P0.Seconds,
                P0.PeakRssBytes / (1024.0 * 1024.0),
                P0.PeakRssBytes / 1024.0 / FleetApps);
    if (LedgerOut) {
      // The ledger of the sweep's last pass: an inspectable artifact per
      // bench run (`gator_cli report <file>` renders the health summary).
      std::ofstream OS(LedgerOut);
      if (!OS) {
        std::fprintf(stderr, "error: cannot write %s\n", LedgerOut);
        return 2;
      }
      const support::Ledger L = corpus::fleetLedger(
          FleetSpecs, AnalysisOptions(), LastBatch,
          /*CacheEnabled=*/false, /*NoTimes=*/false);
      support::writeLedger(OS, L.Header, L.Events);
      std::printf("fleet ledger written to %s (%zu records)\n\n", LedgerOut,
                  L.Events.size());
    }
  }

  // Machine-readable tail for bench/BENCH_parallel.json and
  // bench/BENCH_arena.json.
  std::printf("json: {");
  const char *Sep = "";
  struct Series {
    const char *Name;
    const std::vector<SweepPoint> *Points;
  };
  for (const Series &S : {Series{"corpus20", &Corpus},
                          Series{"synthetic200", &Synthetic},
                          Series{"fleet", &Fleet}}) {
    if (S.Points->empty())
      continue;
    std::printf("%s\"%s\": {", Sep, S.Name);
    const char *Inner = "";
    for (const SweepPoint &P : *S.Points) {
      std::printf("%s\"j%u\": %.4f", Inner, P.Jobs, P.Seconds);
      Inner = ", ";
    }
    std::printf("%s\"peak_rss_bytes\": %llu", Inner,
                S.Points->front().PeakRssBytes);
    if (S.Points == &Fleet)
      std::printf(", \"apps\": %u", FleetApps);
    std::printf("}");
    Sep = ", ";
  }
  std::printf("}\n");
  return 0;
}
