file(REMOVE_RECURSE
  "libgator_baseline.a"
)
