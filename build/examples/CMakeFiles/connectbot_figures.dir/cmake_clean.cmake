file(REMOVE_RECURSE
  "CMakeFiles/connectbot_figures.dir/connectbot_figures.cpp.o"
  "CMakeFiles/connectbot_figures.dir/connectbot_figures.cpp.o.d"
  "connectbot_figures"
  "connectbot_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connectbot_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
