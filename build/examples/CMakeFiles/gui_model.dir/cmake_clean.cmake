file(REMOVE_RECURSE
  "CMakeFiles/gui_model.dir/gui_model.cpp.o"
  "CMakeFiles/gui_model.dir/gui_model.cpp.o.d"
  "gui_model"
  "gui_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gui_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
