file(REMOVE_RECURSE
  "CMakeFiles/gator_cli.dir/gator_cli.cpp.o"
  "CMakeFiles/gator_cli.dir/gator_cli.cpp.o.d"
  "gator_cli"
  "gator_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
