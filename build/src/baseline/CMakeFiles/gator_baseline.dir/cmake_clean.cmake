file(REMOVE_RECURSE
  "CMakeFiles/gator_baseline.dir/Baseline.cpp.o"
  "CMakeFiles/gator_baseline.dir/Baseline.cpp.o.d"
  "libgator_baseline.a"
  "libgator_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
