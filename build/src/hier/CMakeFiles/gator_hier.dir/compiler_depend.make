# Empty compiler generated dependencies file for gator_hier.
# This may be replaced when dependencies are built.
