//===- incremental_test.cpp - Edit-scale incremental re-solve tests -------===//
//
// Differential verification of the DRed incremental session
// (docs/INCREMENTAL.md): after a method-body edit, a layout edit, or an
// id renumbering, reanalyzeMethod/reanalyzeLayout must reach the exact
// fixed point a from-scratch solve over the edited program reaches —
// across both engines and the semantic options matrix — while performing
// strictly fewer propagations than the scratch solve.
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"
#include "corpus/Corpus.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

using namespace gator;
using namespace gator::analysis;
using gator::test::makeBundle;

namespace {

//===----------------------------------------------------------------------===//
// Fixture sources: in-memory mirror of tests/fixtures/incremental_base
// and .../incremental_edit (the CLI --incremental-edit integration test
// drives the on-disk copies; these drive the library API directly).
//===----------------------------------------------------------------------===//

const char *BaseSource = R"(
class MainActivity extends android.app.Activity {
  field cached: android.view.View;

  method onCreate() {
    var lid: int;
    var bid: int;
    var b: android.view.View;
    var l: TapListener;
    var t: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    bid := @id/action_button;
    b := this.findViewById(bid);
    l := new TapListener(this);
    b.setOnClickListener(l);
    t := this.helper();
    this.cached := t;
  }

  method helper(): android.view.View {
    var tid: int;
    var t: android.view.View;
    tid := @id/title_text;
    t := this.findViewById(tid);
    return t;
  }
}

class DetailActivity extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var did: int;
    var d: android.view.View;
    lid := @layout/second;
    this.setContentView(lid);
    did := @id/detail_text;
    d := this.findViewById(did);
  }
}

class TapListener implements android.view.View.OnClickListener {
  field owner: MainActivity;

  method init(a: MainActivity) {
    this.owner := a;
  }

  method onClick(v: android.view.View) {
    var a: MainActivity;
    var t: android.view.View;
    a := this.owner;
    t := a.helper();
  }
}
)";

// Same class/method/field/layout-name sets; helper() resolves a different
// id (the method edit).
const char *EditedSource = R"(
class MainActivity extends android.app.Activity {
  field cached: android.view.View;

  method onCreate() {
    var lid: int;
    var bid: int;
    var b: android.view.View;
    var l: TapListener;
    var t: android.view.View;
    lid := @layout/main;
    this.setContentView(lid);
    bid := @id/action_button;
    b := this.findViewById(bid);
    l := new TapListener(this);
    b.setOnClickListener(l);
    t := this.helper();
    this.cached := t;
  }

  method helper(): android.view.View {
    var bid: int;
    var b: android.view.View;
    bid := @id/action_button;
    b := this.findViewById(bid);
    return b;
  }
}

class DetailActivity extends android.app.Activity {
  method onCreate() {
    var lid: int;
    var did: int;
    var d: android.view.View;
    lid := @layout/second;
    this.setContentView(lid);
    did := @id/detail_text;
    d := this.findViewById(did);
  }
}

class TapListener implements android.view.View.OnClickListener {
  field owner: MainActivity;

  method init(a: MainActivity) {
    this.owner := a;
  }

  method onClick(v: android.view.View) {
    var a: MainActivity;
    var t: android.view.View;
    a := this.owner;
    t := a.helper();
  }
}
)";

const char *BaseMain = R"(<LinearLayout android:id="@+id/root_panel">
  <TextView android:id="@+id/title_text" />
  <Button android:id="@+id/action_button" />
</LinearLayout>)";

// Child order swapped: a tree edit that also renumbers the interning
// order of the two view ids in the edited parse.
const char *EditedMain = R"(<LinearLayout android:id="@+id/root_panel">
  <Button android:id="@+id/action_button" />
  <TextView android:id="@+id/title_text" />
</LinearLayout>)";

const char *BaseSecond = R"(<LinearLayout>
  <TextView android:id="@+id/detail_text" />
</LinearLayout>)";

// Adds a view with an id name the base app never interned.
const char *EditedSecond = R"(<LinearLayout>
  <TextView android:id="@+id/detail_text" />
  <Button android:id="@+id/detail_action" />
</LinearLayout>)";

std::unique_ptr<corpus::AppBundle> baseBundle() {
  return makeBundle(BaseSource,
                    {{"main", BaseMain}, {"second", BaseSecond}});
}

struct SessionRun {
  bool Supported = false;
  bool Applied = false;
  bool Match = false;
  unsigned long IncPropagations = 0;
  unsigned long ScratchPropagations = 0;
  size_t Retracted = 0;
};

/// Mirrors the CLI's --incremental-edit flow against the library API:
/// diff, graft, reanalyze, then differentially verify against a
/// from-scratch solve over the same (grafted) program and layouts.
SessionRun runSession(corpus::AppBundle &Base, corpus::AppBundle &Edited,
                      IncrementalAnalysis::Engine Eng,
                      const AnalysisOptions &Options = {}) {
  SessionRun R;
  EditDiff Diff = diffBundles(Base.Program, Edited.Program, *Base.Layouts,
                              *Edited.Layouts);
  if (!Diff.Unsupported.empty())
    return R;
  R.Supported = true;

  IncrementalAnalysis Inc(Base.Program, *Base.Layouts, Base.Android, Options,
                          Base.Diags, Eng);
  Inc.solveInitial();
  for (auto &[BaseMethod, EditMethod] : Diff.Methods) {
    if (!graftMethodBody(*BaseMethod, *EditMethod) ||
        !Inc.reanalyzeMethod(*BaseMethod))
      return R;
    R.IncPropagations += Inc.lastStats().Propagations;
    R.Retracted += Inc.lastFactsRetracted();
  }
  for (const std::string &Name : Diff.Layouts) {
    const layout::LayoutDef *Def = Edited.Layouts->findByName(Name);
    if (!Def || !Def->root() ||
        !Inc.reanalyzeLayout(Name, Def->root()->clone()))
      return R;
    R.IncPropagations += Inc.lastStats().Propagations;
    R.Retracted += Inc.lastFactsRetracted();
  }
  R.Applied = true;

  AnalysisOptions ScratchOptions = Options;
  ScratchOptions.RecordProvenance = false;
  auto Scratch = GuiAnalysis::run(Base.Program, *Base.Layouts, Base.Android,
                                  ScratchOptions, Base.Diags);
  if (!Scratch)
    return R;
  R.ScratchPropagations = Scratch->Stats.Propagations;
  R.Match = solutionDigest(Inc.solution()) == solutionDigest(*Scratch->Sol);
  return R;
}

//===----------------------------------------------------------------------===//
// Fixture edits, both engines, semantic options matrix
//===----------------------------------------------------------------------===//

TEST(IncrementalTest, CombinedEditMatchesScratchAcrossEnginesAndOptions) {
  for (auto Eng : {IncrementalAnalysis::Engine::Fused,
                   IncrementalAnalysis::Engine::Phased}) {
    for (unsigned Mask = 0; Mask < 16; ++Mask) {
      AnalysisOptions Options;
      Options.TrackViewIds = (Mask & 1) != 0;
      Options.TrackHierarchy = (Mask & 2) != 0;
      Options.FindView3ChildOnly = (Mask & 4) != 0;
      Options.ModelListenerCallbacks = (Mask & 8) != 0;
      auto Base = baseBundle();
      auto Edited = makeBundle(
          EditedSource, {{"main", EditedMain}, {"second", EditedSecond}});
      SessionRun R = runSession(*Base, *Edited, Eng, Options);
      ASSERT_TRUE(R.Supported) << "mask " << Mask;
      ASSERT_TRUE(R.Applied) << "mask " << Mask;
      EXPECT_TRUE(R.Match)
          << "engine " << (Eng == IncrementalAnalysis::Engine::Fused
                               ? "fused"
                               : "phased")
          << " options mask " << Mask;
    }
  }
}

TEST(IncrementalTest, MethodEditAloneMatchesAndBeatsScratch) {
  auto Base = baseBundle();
  auto Edited =
      makeBundle(EditedSource, {{"main", BaseMain}, {"second", BaseSecond}});
  SessionRun R =
      runSession(*Base, *Edited, IncrementalAnalysis::Engine::Fused);
  ASSERT_TRUE(R.Supported);
  ASSERT_TRUE(R.Applied);
  EXPECT_TRUE(R.Match);
  EXPECT_GT(R.Retracted, 0u);
  // The edit touches one method body; re-deriving it must move strictly
  // less work than re-solving the whole app.
  EXPECT_LT(R.IncPropagations, R.ScratchPropagations);
}

TEST(IncrementalTest, LayoutReorderEditMatchesScratch) {
  auto Base = baseBundle();
  auto Edited =
      makeBundle(BaseSource, {{"main", EditedMain}, {"second", BaseSecond}});
  SessionRun R =
      runSession(*Base, *Edited, IncrementalAnalysis::Engine::Fused);
  ASSERT_TRUE(R.Supported);
  ASSERT_TRUE(R.Applied);
  EXPECT_TRUE(R.Match);
  EXPECT_LT(R.IncPropagations, R.ScratchPropagations);
}

// Regression: a layout edit introducing an id name the base app never
// interned mints the ViewId node mid-re-solve; the solver must self-seed
// it exactly as seedValueNodes() would have in a scratch run.
TEST(IncrementalTest, LayoutEditWithNewIdNameMatchesScratch) {
  for (auto Eng : {IncrementalAnalysis::Engine::Fused,
                   IncrementalAnalysis::Engine::Phased}) {
    auto Base = baseBundle();
    auto Edited = makeBundle(
        BaseSource, {{"main", BaseMain}, {"second", EditedSecond}});
    SessionRun R = runSession(*Base, *Edited, Eng);
    ASSERT_TRUE(R.Supported);
    ASSERT_TRUE(R.Applied);
    EXPECT_TRUE(R.Match)
        << (Eng == IncrementalAnalysis::Engine::Fused ? "fused" : "phased");
  }
}

TEST(IncrementalTest, StructuralEditIsUnsupported) {
  const char *Extra = R"(
class MainActivity extends android.app.Activity {
  method onCreate() {
  }
  method added() {
  }
}
)";
  const char *BaseTiny = R"(
class MainActivity extends android.app.Activity {
  method onCreate() {
  }
}
)";
  auto Base = makeBundle(BaseTiny);
  auto Edited = makeBundle(Extra);
  EditDiff Diff = diffBundles(Base->Program, Edited->Program, *Base->Layouts,
                              *Edited->Layouts);
  EXPECT_FALSE(Diff.Unsupported.empty());
}

//===----------------------------------------------------------------------===//
// Corpus apps: generated programs are the adversarial input — shared
// helpers, listener fan-out, inflated item layouts.
//===----------------------------------------------------------------------===//

/// First layout the session accepts for re-analysis (skips <include>
/// targets, which are beyond edit scale).
bool applyLayoutEdit(IncrementalAnalysis &Inc,
                     const layout::LayoutRegistry &Layouts,
                     bool AddNewIdChild) {
  for (const auto &Def : Layouts.layouts()) {
    if (!Def->root())
      continue;
    auto NewRoot = Def->root()->clone();
    // Reverse child order; optionally graft a view carrying an id name
    // the generated app never interned.
    auto Children = NewRoot->takeChildren();
    for (auto It = Children.rbegin(); It != Children.rend(); ++It)
      NewRoot->addChild(std::move(*It));
    if (AddNewIdChild)
      NewRoot->addChild(std::make_unique<layout::LayoutNode>(
          "TextView", "inc_test_fresh_id"));
    if (Inc.reanalyzeLayout(Def->name(), std::move(NewRoot)))
      return true;
  }
  return false;
}

TEST(IncrementalTest, CorpusLayoutEditsMatchScratch) {
  // Small early paperCorpus specs keep the test fast; they still exercise
  // listeners, shared helpers, and multi-activity inflation.
  const auto &Specs = corpus::paperCorpus();
  ASSERT_GE(Specs.size(), 4u);
  for (size_t I = 0; I < 4; ++I) {
    corpus::GeneratedApp App = corpus::generateApp(Specs[I]);
    ASSERT_TRUE(App.Bundle);
    corpus::AppBundle &B = *App.Bundle;
    for (bool AddNewId : {false, true}) {
      IncrementalAnalysis Inc(B.Program, *B.Layouts, B.Android, {}, B.Diags);
      Inc.solveInitial();
      if (!applyLayoutEdit(Inc, *B.Layouts, AddNewId))
        continue; // every layout an include target; nothing to edit
      AnalysisOptions ScratchOptions;
      ScratchOptions.RecordProvenance = false;
      auto Scratch = GuiAnalysis::run(B.Program, *B.Layouts, B.Android,
                                      ScratchOptions, B.Diags);
      ASSERT_TRUE(Scratch);
      EXPECT_EQ(solutionDigest(Inc.solution()), solutionDigest(*Scratch->Sol))
          << Specs[I].Name << (AddNewId ? " +new-id" : " reorder");
      EXPECT_LT(Inc.lastStats().Propagations, Scratch->Stats.Propagations)
          << Specs[I].Name;
    }
  }
}

TEST(IncrementalTest, CorpusMethodBodySwapMatchesScratch) {
  const auto &Specs = corpus::paperCorpus();
  ASSERT_GE(Specs.size(), 2u);
  for (size_t I = 0; I < 2; ++I) {
    corpus::GeneratedApp App = corpus::generateApp(Specs[I]);
    ASSERT_TRUE(App.Bundle);
    corpus::AppBundle &B = *App.Bundle;
    // Two activity onCreate bodies with identical signatures: grafting
    // one onto the other is a legal single-method edit that rewires
    // setContentView/findViewById traffic.
    std::vector<ir::MethodDecl *> OnCreates;
    for (ir::ClassDecl *C : B.Program.classes())
      if (ir::MethodDecl *M = C->findOwnMethod("onCreate", 0))
        if (!M->body().empty())
          OnCreates.push_back(M);
    if (OnCreates.size() < 2)
      continue;
    IncrementalAnalysis Inc(B.Program, *B.Layouts, B.Android, {}, B.Diags);
    Inc.solveInitial();
    ASSERT_TRUE(graftMethodBody(*OnCreates[0], *OnCreates[1]));
    ASSERT_TRUE(Inc.reanalyzeMethod(*OnCreates[0]));
    AnalysisOptions ScratchOptions;
    ScratchOptions.RecordProvenance = false;
    auto Scratch = GuiAnalysis::run(B.Program, *B.Layouts, B.Android,
                                    ScratchOptions, B.Diags);
    ASSERT_TRUE(Scratch);
    EXPECT_EQ(solutionDigest(Inc.solution()), solutionDigest(*Scratch->Sol))
        << Specs[I].Name;
    EXPECT_LT(Inc.lastStats().Propagations, Scratch->Stats.Propagations)
        << Specs[I].Name;
  }
}

} // namespace
