//===- JsonParse.h - Minimal JSON DOM parser --------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The read-side counterpart of support/Json.h: a small recursive-descent
/// JSON parser producing an owned DOM. It exists for the run-ledger tools
/// (docs/OBSERVABILITY.md, "Run ledger & reports") — `gator_cli report`
/// must read back the JSONL ledgers the analysis drivers write — and is
/// deliberately minimal: no streaming, no SAX, no number formats beyond
/// what JsonWriter emits (integers, fixed-precision decimals, exponents
/// accepted for robustness).
///
/// Numbers are held as double; every counter the ledger stores fits in the
/// 2^53 exact-integer range with orders of magnitude to spare. Object
/// members preserve insertion order (the ledger writer emits a fixed key
/// order, and diffs of re-serialized documents stay stable).
///
/// Parsing is fail-soft in the same spirit as the GSC1 cache codec:
/// malformed input returns false with a position-annotated error string,
/// never throws, and never reads past the input view.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_JSONPARSE_H
#define GATOR_SUPPORT_JSONPARSE_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gator {
namespace support {

/// One parsed JSON value. A tagged union over the seven JSON kinds, with
/// owned children; cheap to move, deliberately not cheap to copy.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  uint64_t asU64() const {
    return Num <= 0 ? 0 : static_cast<uint64_t>(Num + 0.5);
  }
  const std::string &asString() const { return Str; }

  const std::vector<JsonValue> &array() const { return Arr; }
  /// Members in document order.
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Obj;
  }

  /// Object member lookup; null when absent or when this is not an
  /// object. Linear scan — ledger records carry a few dozen keys.
  const JsonValue *find(std::string_view Key) const;

  /// Typed member accessors with defaults, for tolerant readers.
  double numberOr(std::string_view Key, double Default) const;
  uint64_t u64Or(std::string_view Key, uint64_t Default) const;
  bool boolOr(std::string_view Key, bool Default) const;
  std::string stringOr(std::string_view Key, std::string Default) const;

  /// True when the object carries \p Key (any kind).
  bool has(std::string_view Key) const { return find(Key) != nullptr; }

  /// Parses \p Text (one complete JSON document; trailing whitespace
  /// allowed, trailing garbage is an error). On failure returns false and
  /// sets \p Error to "offset N: reason".
  static bool parse(std::string_view Text, JsonValue &Out,
                    std::string &Error);

  // Builder hooks used by the parser; exposed so tests can assemble
  // values directly.
  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool V);
  static JsonValue makeNumber(double V);
  static JsonValue makeString(std::string V);
  static JsonValue makeArray(std::vector<JsonValue> V);
  static JsonValue
  makeObject(std::vector<std::pair<std::string, JsonValue>> V);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

} // namespace support
} // namespace gator

#endif // GATOR_SUPPORT_JSONPARSE_H
