# Empty dependencies file for guimodel_test.
# This may be replaced when dependencies are built.
