//===- GraphBuilder.h - Constraint graph construction -----------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 1 of Section 4.3: "the analysis creates the constraint graph edges
/// that can be directly inferred from program statements". All application
/// methods are considered executable; polymorphic calls are resolved with
/// class-hierarchy information; calls to application methods contribute
/// parameter/return edges; occurrences of Android APIs become operation
/// nodes; activity lifecycle callbacks seed activity nodes into `this`
/// variables.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_GRAPHBUILDER_H
#define GATOR_ANALYSIS_GRAPHBUILDER_H

#include "analysis/Options.h"
#include "analysis/Solution.h"
#include "android/AndroidModel.h"
#include "graph/ConstraintGraph.h"
#include "hier/ClassHierarchy.h"
#include "layout/Layout.h"

#include <unordered_map>
#include <vector>

namespace gator {
namespace support {
class TraceSink;
} // namespace support

namespace analysis {

/// Builds the statement-derived part of the constraint graph.
class GraphBuilder {
public:
  /// \p Layouts is mutable because view ids referenced only from code
  /// (e.g. used with setId on programmatic views) are interned on demand.
  GraphBuilder(const ir::Program &P, layout::LayoutRegistry &Layouts,
               const android::AndroidModel &AM,
               const hier::ClassHierarchy &CH, DiagnosticEngine &Diags)
      : P(P), Layouts(Layouts), AM(AM), CH(CH), Diags(Diags) {}

  /// Populates \p G and \p Ops. Returns false on (non-fatal) errors.
  bool build(graph::ConstraintGraph &G, std::vector<OpSite> &Ops);

  /// Attaches a span sink for build sub-phases (docs/OBSERVABILITY.md);
  /// null disables tracing. Must outlive build().
  void setTrace(support::TraceSink *Sink) { Trace = Sink; }

  /// Enables/disables unknown-source modeling (docs/ROBUSTNESS.md): when on,
  /// reflective construction, non-constant ids, and missing layout resources
  /// become tagged UnknownView/UnknownId nodes instead of dropped facts.
  void setModelUnknownSources(bool On) { ModelUnknown = On; }

private:
  void buildResourceNodes(graph::ConstraintGraph &G);
  void buildActivityNodes(graph::ConstraintGraph &G);
  void buildMethod(graph::ConstraintGraph &G, std::vector<OpSite> &Ops,
                   const ir::MethodDecl &M);
  void buildInvoke(graph::ConstraintGraph &G, std::vector<OpSite> &Ops,
                   const ir::MethodDecl &M, const ir::Stmt &S);
  void buildOpSite(graph::ConstraintGraph &G, std::vector<OpSite> &Ops,
                   const ir::MethodDecl &M, const ir::Stmt &S,
                   const android::OpSpec &Spec);
  void buildCallEdges(graph::ConstraintGraph &G, const ir::MethodDecl &M,
                      const ir::Stmt &S,
                      const std::vector<const ir::MethodDecl *> &Targets);

  /// Program::findClass memoized by the *address* of the queried name —
  /// every caller passes a string stored in the IR (Stmt::ClassName,
  /// Variable::TypeName), stable for the builder's lifetime, so a pointer
  /// hash replaces a string hash on the per-statement hot path. Negative
  /// lookups are cached too.
  const ir::ClassDecl *findClassCached(const std::string &Name);

  const ir::Program &P;
  layout::LayoutRegistry &Layouts;
  const android::AndroidModel &AM;
  const hier::ClassHierarchy &CH;
  DiagnosticEngine &Diags;

  std::unordered_map<const std::string *, const ir::ClassDecl *> ClassCache;

  support::TraceSink *Trace = nullptr;
  bool ModelUnknown = true;
};

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_GRAPHBUILDER_H
