# Empty compiler generated dependencies file for connectbot_figures.
# This may be replaced when dependencies are built.
