//===- connectbot_test.cpp - Figure 1 end-to-end integration ----*- C++ -*-===//
//
// Validates the full pipeline (parser -> layouts -> graph -> solver) on
// the paper's running example, asserting the resolution claims made in
// Sections 2 and 4.2 of the paper.
//
//===----------------------------------------------------------------------===//

#include "analysis/GuiAnalysis.h"
#include "analysis/SolutionChecker.h"
#include "corpus/ConnectBot.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;
using namespace gator::graph;

namespace {

class ConnectBotTest : public ::testing::Test {
protected:
  void SetUp() override {
    App = buildConnectBotExample();
    ASSERT_TRUE(App);
    if (App->Diags.hasErrors()) {
      std::ostringstream OS;
      App->Diags.print(OS);
      FAIL() << "example build failed:\n" << OS.str();
    }
    Result = GuiAnalysis::run(App->Program, *App->Layouts, App->Android,
                              AnalysisOptions(), App->Diags);
    ASSERT_TRUE(Result);
  }

  /// Variable node for Class.method(varName).
  NodeId varNode(const std::string &ClassName, const std::string &Method,
                 const std::string &Var, unsigned Arity) {
    const ir::ClassDecl *C = App->Program.findClass(ClassName);
    EXPECT_NE(C, nullptr);
    const ir::MethodDecl *M = C->findOwnMethod(Method, Arity);
    EXPECT_NE(M, nullptr) << ClassName << "." << Method;
    ir::VarId V = M->findVar(Var);
    EXPECT_NE(V, ir::InvalidVar) << Var;
    return Result->Graph->getVarNode(M, V);
  }

  /// The views reaching a variable, as sorted class-name strings.
  std::vector<std::string> viewClassesAt(NodeId N) {
    std::vector<std::string> Names;
    for (NodeId V : Result->Sol->viewsAt(N))
      Names.push_back(Result->Graph->node(V).Klass->name());
    std::sort(Names.begin(), Names.end());
    return Names;
  }

  std::unique_ptr<AppBundle> App;
  std::unique_ptr<AnalysisResult> Result;
};

TEST_F(ConnectBotTest, OpNodeInventory) {
  auto CountOps = [&](android::OpKind K) {
    return Result->Sol->opsOfKind(K).size();
  };
  EXPECT_EQ(CountOps(android::OpKind::Inflate2), 1u); // setContentView(int)
  EXPECT_EQ(CountOps(android::OpKind::Inflate1), 1u); // inflater.inflate
  EXPECT_EQ(CountOps(android::OpKind::FindView2), 2u); // lines 10, 13
  EXPECT_EQ(CountOps(android::OpKind::FindView1), 1u); // line 6
  EXPECT_EQ(CountOps(android::OpKind::FindView3), 1u); // getCurrentView
  EXPECT_EQ(CountOps(android::OpKind::SetListener), 1u); // line 16
  EXPECT_EQ(CountOps(android::OpKind::SetId), 1u);    // line 22
  EXPECT_EQ(CountOps(android::OpKind::AddView2), 2u); // lines 23, 25
}

TEST_F(ConnectBotTest, InflationCreatesLayoutViews) {
  // act_console: RelativeLayout root, ViewFlipper, RelativeLayout
  // (keyboard_group), ImageView (button_esc) = 4 nodes.
  // item_terminal: RelativeLayout root + TextView = 2 nodes.
  std::vector<NodeId> Infl(Result->Graph->nodesOfKind(NodeKind::ViewInfl).begin(),
                           Result->Graph->nodesOfKind(NodeKind::ViewInfl).end());
  EXPECT_EQ(Infl.size(), 6u);
}

TEST_F(ConnectBotTest, FindViewLine10ResolvesToFlipper) {
  // e := this.findViewById(@id/console_flip) resolves to the ViewFlipper
  // inflated from act_console — and nothing else.
  NodeId E = varNode("ConsoleActivity", "onCreate", "e", 0);
  EXPECT_EQ(viewClassesAt(E),
            std::vector<std::string>{"android.widget.ViewFlipper"});
}

TEST_F(ConnectBotTest, FindViewLine13ResolvesToEscButton) {
  NodeId G = varNode("ConsoleActivity", "onCreate", "g", 0);
  EXPECT_EQ(viewClassesAt(G),
            std::vector<std::string>{"android.widget.ImageView"});
}

TEST_F(ConnectBotTest, EscButtonHasClickListener) {
  // Section 2: the ImageView for the ESC button is associated with the
  // EscapeButtonListener created at line 15.
  NodeId G = varNode("ConsoleActivity", "onCreate", "g", 0);
  auto Views = Result->Sol->viewsAt(G);
  ASSERT_EQ(Views.size(), 1u);
  const auto &Listeners = Result->Graph->listeners(Views.front());
  ASSERT_EQ(Listeners.size(), 1u);
  EXPECT_EQ(Result->Graph->node(Listeners.front()).Klass->name(),
            "EscapeButtonListener");
}

TEST_F(ConnectBotTest, ClickCallbackReceivesEscButton) {
  // The implicit callback j.onClick(h): the handler's view parameter
  // receives the ImageView.
  NodeId R = varNode("EscapeButtonListener", "onClick", "r", 1);
  EXPECT_EQ(viewClassesAt(R),
            std::vector<std::string>{"android.widget.ImageView"});
  // And `this` of the handler is the listener allocated at line 15.
  NodeId ThisN = varNode("EscapeButtonListener", "onClick", "this", 1);
  const auto &Vals = Result->Sol->valuesAt(ThisN);
  ASSERT_EQ(Vals.size(), 1u);
  EXPECT_EQ(Result->Graph->node(*Vals.begin()).Klass->name(),
            "EscapeButtonListener");
}

TEST_F(ConnectBotTest, HelperChainResolvesToTerminalView) {
  // Section 2's punchline: the find-view at line 6 (inside the helper
  // called from onClick, line 32) returns the programmatically created
  // TerminalView — via getCurrentView over the flipper's children (added
  // at line 25), the setId at line 22, and the addView at line 23.
  NodeId D = varNode("ConsoleActivity", "findTerminalView", "d", 1);
  EXPECT_EQ(viewClassesAt(D), std::vector<std::string>{"TerminalView"});

  NodeId V = varNode("EscapeButtonListener", "onClick", "v", 1);
  EXPECT_EQ(viewClassesAt(V), std::vector<std::string>{"TerminalView"});
}

TEST_F(ConnectBotTest, GetCurrentViewResolvesToInflatedItemRoot) {
  // c := b.getCurrentView(): the flipper's children are exactly the
  // RelativeLayout roots inflated at line 19 (child-only refinement).
  NodeId C = varNode("ConsoleActivity", "findTerminalView", "c", 1);
  EXPECT_EQ(viewClassesAt(C),
            std::vector<std::string>{"android.widget.RelativeLayout"});
}

TEST_F(ConnectBotTest, ActivityRootIsActConsole) {
  // ConsoleActivity => root edge to the act_console RelativeLayout root.
  const ir::ClassDecl *Act = App->Program.findClass("ConsoleActivity");
  NodeId ActNode = Result->Graph->getActivityNode(Act);
  const auto &Roots = Result->Graph->roots(ActNode);
  ASSERT_EQ(Roots.size(), 1u);
  EXPECT_EQ(Result->Graph->node(Roots.front()).Klass->name(),
            "android.widget.RelativeLayout");
  // "the root node RelativeLayout_9.1 is an ancestor of" the whole GUI:
  // its descendant set covers the act_console nodes plus the item_terminal
  // subtree and the TerminalView linked in through AddView2 ops.
  EXPECT_EQ(Result->Graph->descendantsOf(Roots.front()).size(), 7u);
}

TEST_F(ConnectBotTest, PerfectPrecisionMetrics) {
  // Table 2 reports 1.00 across the board for ConnectBot.
  auto M = Result->metrics();
  EXPECT_DOUBLE_EQ(M.AvgReceivers, 1.0);
  ASSERT_TRUE(M.AvgParameters.has_value());
  EXPECT_DOUBLE_EQ(*M.AvgParameters, 1.0);
  ASSERT_TRUE(M.AvgResults.has_value());
  EXPECT_DOUBLE_EQ(*M.AvgResults, 1.0);
  ASSERT_TRUE(M.AvgListeners.has_value());
  EXPECT_DOUBLE_EQ(*M.AvgListeners, 1.0);
}

TEST_F(ConnectBotTest, SolutionIsAClosedFixedPoint) {
  for (const std::string &V : analysis::checkSolutionClosure(*Result))
    ADD_FAILURE() << V;
}

TEST_F(ConnectBotTest, NoDiagnosticsDuringAnalysis) {
  std::ostringstream OS;
  App->Diags.print(OS);
  EXPECT_EQ(App->Diags.errorCount(), 0u) << OS.str();
  EXPECT_EQ(App->Diags.warningCount(), 0u) << OS.str();
}

} // namespace
