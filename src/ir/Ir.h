//===- Ir.h - The ALite intermediate representation -------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ALite IR. ALite is the abstract language defined in Section 3 of the
/// paper: a Java-like core (classes, fields, virtual methods, assignments,
/// field accesses, calls, returns) extended with the Android-specific
/// constructs `x := R.layout.f` and `x := R.id.f`. The original system
/// obtained equivalent facts from Soot's Jimple; here ALite is a first-class
/// IR with its own textual syntax (see parser/) and a programmatic builder
/// (ProgramBuilder.h).
///
/// Ownership: a Program owns its ClassDecls; a ClassDecl owns its FieldDecls
/// and MethodDecls; a MethodDecl owns its Variables and Stmts. All
/// cross-references are stable raw pointers resolved by Program::resolve().
///
/// Allocation (docs/MEMORY.md): declarations are bump-allocated from the
/// Program's Arena in creation order, so one app's whole IR is a handful
/// of contiguous slabs released together with the Program. Class, method,
/// and field names are interned into the Program's StringInterner at
/// declaration time; name lookups (findClass, the findMethod memo) are
/// interned-id probes of flat tables — no per-query string hashing.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_IR_IR_H
#define GATOR_IR_IR_H

#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/FlatMap.h"
#include "support/SourceLocation.h"
#include "support/StringInterner.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gator {
namespace ir {

class ClassDecl;
class MethodDecl;
class Program;

/// Index of a local variable within its enclosing method. For instance
/// methods, variable 0 is the implicit `this`, followed by the formal
/// parameters, followed by the declared locals.
using VarId = int32_t;
inline constexpr VarId InvalidVar = -1;

/// Well-known type names. ALite types are identified by name; "int" and
/// "void" are primitive, everything else names a class or interface.
inline constexpr const char *IntTypeName = "int";
inline constexpr const char *VoidTypeName = "void";
inline constexpr const char *ObjectClassName = "java.lang.Object";

/// Returns true if \p Name is a primitive (non-reference) type name.
bool isPrimitiveTypeName(const std::string &Name);

class Program;

/// A local variable or formal parameter.
struct Variable {
  std::string Name;
  /// Declared type name; a class name, "int", or empty (treated as
  /// java.lang.Object).
  std::string TypeName;
  bool IsParam = false;
  bool IsThis = false;
};

/// A field declaration. The analysis is field-based (Section 4): one
/// constraint-graph node per FieldDecl, independent of the base object.
class FieldDecl {
public:
  FieldDecl(std::string Name, std::string TypeName, bool IsStatic,
            const ClassDecl *Owner, uint32_t GlobalId)
      : Name(std::move(Name)), TypeName(std::move(TypeName)),
        IsStatic(IsStatic), Owner(Owner), GlobalId(GlobalId) {}

  const std::string &name() const { return Name; }
  const std::string &typeName() const { return TypeName; }
  bool isStatic() const { return IsStatic; }
  const ClassDecl *owner() const { return Owner; }

  /// Per-program dense id (creation order); see MethodDecl::globalId().
  uint32_t globalId() const { return GlobalId; }

  /// Qualified "Class.field" spelling for diagnostics and dumps.
  std::string qualifiedName() const;

private:
  std::string Name;
  std::string TypeName;
  bool IsStatic;
  const ClassDecl *Owner;
  uint32_t GlobalId;
};

/// Statement kinds, mirroring the grammar of ALite in Section 3 plus the
/// Android id-constant extensions of Section 3.2.1 and a class-constant
/// form used by the activity-transition-graph client.
enum class StmtKind {
  AssignVar,        ///< x := y
  AssignNew,        ///< x := new C (constructor call lowered separately)
  AssignNull,       ///< x := null
  LoadField,        ///< x := y.f
  StoreField,       ///< x.f := y
  LoadStaticField,  ///< x := C.f
  StoreStaticField, ///< C.f := x
  AssignLayoutId,   ///< x := R.layout.name  (written `x := @layout/name`)
  AssignViewId,     ///< x := R.id.name      (written `x := @id/name`)
  AssignClassConst, ///< x := classof C
  Invoke,           ///< [z :=] x.m(a1, ..., an), virtual dispatch
  Return,           ///< return [x]
};

/// One ALite statement. A tagged aggregate: the meaningful members depend
/// on Kind (see the per-kind accessors for the exact contract).
struct Stmt {
  StmtKind Kind;
  SourceLocation Loc;

  /// Destination variable (AssignXxx, LoadXxx, Invoke-with-result, Return
  /// operand). InvalidVar when absent.
  VarId Lhs = InvalidVar;
  /// Source/receiver variable (AssignVar rhs, StoreField rhs is Rhs,
  /// LoadField/Invoke base).
  VarId Base = InvalidVar;
  /// StoreField/StoreStaticField value operand.
  VarId Rhs = InvalidVar;

  /// Field name for Load/StoreField (resolved during analysis against the
  /// base's declared type) and Load/StoreStaticField.
  std::string FieldName;
  /// Class name for AssignNew, AssignClassConst, and static field access.
  std::string ClassName;
  /// Resource name for AssignLayoutId / AssignViewId.
  std::string ResourceName;
  /// Invoked method name for Invoke.
  std::string MethodName;
  /// Argument variables for Invoke.
  std::vector<VarId> Args;
};

/// A method declaration with its body.
class MethodDecl {
public:
  MethodDecl(std::string Name, std::string ReturnTypeName, bool IsStatic,
             ClassDecl *Owner, uint32_t GlobalId)
      : Name(std::move(Name)), ReturnTypeName(std::move(ReturnTypeName)),
        IsStatic(IsStatic), Owner(Owner), GlobalId(GlobalId) {
    if (!IsStatic) {
      Variable This;
      This.Name = "this";
      This.IsThis = true;
      Vars.push_back(std::move(This)); // TypeName patched by ClassDecl.
    }
  }

  const std::string &name() const { return Name; }
  const std::string &returnTypeName() const { return ReturnTypeName; }
  bool isStatic() const { return IsStatic; }
  ClassDecl *owner() { return Owner; }
  const ClassDecl *owner() const { return Owner; }

  /// "Class.method/arity" spelling for diagnostics and dumps.
  std::string qualifiedName() const;

  /// Number of formal parameters (excluding `this`).
  unsigned paramCount() const { return NumParams; }

  /// VarId of the i-th formal parameter (0-based, excluding `this`).
  VarId paramVar(unsigned I) const {
    assert(I < NumParams && "parameter index out of range");
    return static_cast<VarId>((IsStatic ? 0 : 1) + I);
  }

  /// VarId of `this`; only valid for instance methods.
  VarId thisVar() const {
    assert(!IsStatic && "static method has no this");
    return 0;
  }

  /// Appends a formal parameter. Must precede any addLocal() call.
  VarId addParam(std::string Name, std::string TypeName);

  /// Appends a local variable, returning its VarId.
  VarId addLocal(std::string Name, std::string TypeName);

  /// Finds a variable by name, or InvalidVar.
  VarId findVar(const std::string &Name) const;

  const std::vector<Variable> &vars() const { return Vars; }
  const Variable &var(VarId Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Vars.size() && "bad VarId");
    return Vars[Id];
  }

  std::vector<Stmt> &body() { return Body; }
  const std::vector<Stmt> &body() const { return Body; }

  /// True for bodiless declarations (interface methods, abstract methods,
  /// platform API stubs).
  bool isAbstract() const { return Abstract; }
  void setAbstract(bool Value) { Abstract = Value; }

  /// Per-program dense id (creation order within the owning Program).
  /// Lets consumers key per-method side tables with flat vectors instead
  /// of pointer-keyed hash maps on hot paths, and keeps one program's id
  /// space independent of any other analyses in the process — a
  /// prerequisite for analyzing many apps concurrently (docs/PARALLEL.md).
  uint32_t globalId() const { return GlobalId; }

private:
  friend class ClassDecl;

  std::string Name;
  std::string ReturnTypeName;
  bool IsStatic;
  bool Abstract = false;
  ClassDecl *Owner;
  uint32_t GlobalId = 0;
  unsigned NumParams = 0;
  std::vector<Variable> Vars;
  std::vector<Stmt> Body;
};

/// A class or interface declaration.
class ClassDecl {
public:
  ClassDecl(std::string Name, bool IsInterface, bool IsPlatform,
            Program *Owner, uint32_t GlobalId)
      : Name(std::move(Name)), IsInterface(IsInterface),
        IsPlatform(IsPlatform), OwnerProgram(Owner), GlobalId(GlobalId) {}

  const std::string &name() const { return Name; }
  bool isInterface() const { return IsInterface; }

  /// Per-program dense id (creation order); see MethodDecl::globalId().
  uint32_t globalId() const { return GlobalId; }

  /// Platform classes model the Android framework; their method bodies are
  /// not part of the analyzed program (Section 3.1: "the bodies of methods
  /// in platform classes are not included in the input program").
  bool isPlatform() const { return IsPlatform; }

  const std::string &superName() const { return SuperName; }
  void setSuperName(std::string Name) { SuperName = std::move(Name); }

  const std::vector<std::string> &interfaceNames() const {
    return InterfaceNames;
  }
  void addInterfaceName(std::string Name) {
    InterfaceNames.push_back(std::move(Name));
  }

  /// Resolved superclass; null for java.lang.Object and for interfaces
  /// without an extended interface. Populated by Program::resolve().
  const ClassDecl *superClass() const { return Super; }
  const std::vector<const ClassDecl *> &interfaces() const {
    return Interfaces;
  }

  FieldDecl *addField(std::string Name, std::string TypeName,
                      bool IsStatic = false);
  MethodDecl *addMethod(std::string Name, std::string ReturnTypeName,
                        bool IsStatic = false);

  /// Declaration lists in creation order. The decls themselves live in the
  /// owning Program's arena; these are flat pointer arrays on the same
  /// arena (docs/MEMORY.md).
  const support::ArenaVector<FieldDecl *> &fields() const { return Fields; }
  const support::ArenaVector<MethodDecl *> &methods() const { return Methods; }

  /// Finds a field declared on this class (no inheritance walk).
  FieldDecl *findOwnField(const std::string &Name) const;
  /// Finds a field on this class or a superclass.
  FieldDecl *findField(const std::string &Name) const;

  /// Finds a method with the given name and parameter count declared on
  /// this class (no inheritance walk).
  MethodDecl *findOwnMethod(const std::string &Name, unsigned Arity) const;
  /// Finds a method on this class, superclasses, or implemented interfaces.
  /// Memoized per class; the cache is dropped whenever any class in the
  /// owning program gains a method or the program is (re-)resolved (see
  /// Program::structureEpoch()).
  MethodDecl *findMethod(const std::string &Name, unsigned Arity) const;

private:
  friend class Program;

  /// Uncached inheritance/interface walk backing findMethod().
  MethodDecl *findMethodUncached(const std::string &Name,
                                 unsigned Arity) const;

  std::string Name;
  bool IsInterface;
  bool IsPlatform;
  Program *OwnerProgram;
  uint32_t GlobalId;
  std::string SuperName;
  std::vector<std::string> InterfaceNames;

  const ClassDecl *Super = nullptr;
  std::vector<const ClassDecl *> Interfaces;

  support::ArenaVector<FieldDecl *> Fields;
  support::ArenaVector<MethodDecl *> Methods;

  /// Lazy name/arity -> resolved method memo for findMethod(). Keyed by
  /// the packed (interned name symbol, arity) id — one integer probe per
  /// hit, no key-string construction. A lookup result depends on this
  /// class, its supertype chain, and its interfaces, so staleness is
  /// tracked against the owning Program's structureEpoch() rather than
  /// per-class state.
  mutable support::FlatIdMap<MethodDecl *> MethodLookupCache;
  mutable uint64_t MethodLookupEpoch = 0;
};

/// A whole ALite program: the set Class of Section 3.1, comprising both
/// application classes and (bodiless) platform classes.
class Program {
public:
  Program() = default;
  /// Non-copyable and non-movable: ClassDecls hold a back-pointer to
  /// their owning Program (for id allocation and the structure epoch), so
  /// the Program must stay at one address for its whole lifetime. Hold it
  /// directly or behind a unique_ptr (as corpus::AppBundle does).
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  /// Creates and registers a class. Returns null and reports a diagnostic
  /// if the name is already taken.
  ClassDecl *addClass(std::string Name, bool IsInterface = false,
                      bool IsPlatform = false,
                      DiagnosticEngine *Diags = nullptr);

  /// Finds a class by qualified name, or null. An interned-id probe: a
  /// name that was never interned misses without hashing a single bucket
  /// chain of strings.
  ClassDecl *findClass(const std::string &Name) const;

  /// Classes in creation order (arena pointer array, see docs/MEMORY.md).
  const support::ArenaVector<ClassDecl *> &classes() const { return Classes; }

  /// Links superclass/interface pointers and reports unresolved names.
  /// Returns false if any error was reported.
  bool resolve(DiagnosticEngine &Diags);

  /// True if resolve() has completed successfully.
  bool isResolved() const { return Resolved; }

  /// Walks `Klass` and its supertypes; true if `Ancestor` is reached.
  /// Requires resolve(). Interfaces are included in the walk.
  bool isSubtypeOf(const ClassDecl *Klass, const ClassDecl *Ancestor) const;

  /// Number of application (non-platform) classes.
  unsigned appClassCount() const;
  /// Number of methods with bodies in application classes.
  unsigned appMethodCount() const;

  /// Monotone counter bumped whenever this program's method/supertype
  /// structure changes (ClassDecl::addMethod, resolve()). Per-class
  /// lookup memos compare against it to detect staleness, which lets the
  /// memos survive across analysis runs over an unchanged program.
  /// Per-program (not process-global) so that independent programs being
  /// analyzed on different threads never touch shared mutable state
  /// (docs/PARALLEL.md).
  uint64_t structureEpoch() const { return StructureEpoch; }

  /// The interner backing all declaration-name lookups. Exposed so
  /// clients keying their own side tables by name can reuse the symbols.
  StringInterner &names() { return Names; }
  const StringInterner &names() const { return Names; }

  /// The arena owning every declaration of this program. Exposed for
  /// footprint accounting (AppStats::ArenaBytes).
  const support::Arena &declArena() const { return DeclArena; }

private:
  friend class ClassDecl; // addMethod/addField allocate ids + bump epoch.

  /// Owns all ClassDecl/MethodDecl/FieldDecl storage; declared first so
  /// it is destroyed last (decl destructors run inside ~Arena, after the
  /// pointer tables below are gone — they never dereference them).
  support::Arena DeclArena;
  StringInterner Names;
  support::ArenaVector<ClassDecl *> Classes;
  /// Interned class-name symbol -> declaration.
  support::FlatIdMap<ClassDecl *> ByName;
  bool Resolved = false;

  /// See structureEpoch(). Starts at 1 so a fresh ClassDecl (epoch 0)
  /// always takes the rebuild path on its first lookup.
  uint64_t StructureEpoch = 1;
  /// Next dense per-kind declaration ids (see MethodDecl::globalId()).
  uint32_t NextClassId = 0;
  uint32_t NextMethodId = 0;
  uint32_t NextFieldId = 0;
};

} // namespace ir
} // namespace gator

#endif // GATOR_IR_IR_H
