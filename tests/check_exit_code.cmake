# Runs gator_cli with the given arguments and asserts the exact exit code
# (docs/ROBUSTNESS.md, "Exit-code contract"): 0 = complete, 1 = degraded
# (input diagnostics, unknown-source degradation, or budget truncation),
# 2 = internal error. WILL_FAIL would accept any non-zero code and so could
# not tell a degraded run (1) from a crash (2); this script can.
#
# Usage:
#   cmake -DCLI=<gator_cli> -DEXPECT=<code> "-DARGS=<arg;arg;...>"
#         -P check_exit_code.cmake
if(NOT DEFINED CLI OR NOT DEFINED EXPECT OR NOT DEFINED ARGS)
  message(FATAL_ERROR "check_exit_code.cmake needs -DCLI, -DEXPECT, -DARGS")
endif()

execute_process(
  COMMAND ${CLI} ${ARGS}
  OUTPUT_VARIABLE OUT
  ERROR_VARIABLE ERR
  RESULT_VARIABLE CODE)

if(NOT CODE EQUAL ${EXPECT})
  message(FATAL_ERROR
    "gator_cli ${ARGS} exited ${CODE}, expected ${EXPECT}\n"
    "--- stdout ---\n${OUT}\n--- stderr ---\n${ERR}")
endif()
