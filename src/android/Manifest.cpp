//===- Manifest.cpp - AndroidManifest.xml model -----------------*- C++ -*-===//

#include "android/Manifest.h"

#include "xml/Xml.h"

using namespace gator;
using namespace gator::android;

namespace {

/// Resolves ".Relative" names against the package.
std::string resolveName(const std::string &Name, const std::string &Package) {
  if (!Name.empty() && Name[0] == '.')
    return Package + Name;
  return Name;
}

bool intentFilterIsLauncher(const xml::XmlNode &Filter) {
  bool HasMain = false, HasLauncher = false;
  for (const auto &Child : Filter.children()) {
    const std::string *Name = Child->findAttr("android:name");
    if (!Name)
      continue;
    if (Child->tag() == "action" &&
        *Name == "android.intent.action.MAIN")
      HasMain = true;
    if (Child->tag() == "category" &&
        *Name == "android.intent.category.LAUNCHER")
      HasLauncher = true;
  }
  return HasMain && HasLauncher;
}

} // namespace

std::optional<Manifest> gator::android::parseManifest(
    std::string_view XmlText, const std::string &FileName,
    DiagnosticEngine &Diags) {
  std::unique_ptr<xml::XmlNode> Doc = xml::parseXml(XmlText, FileName, Diags);
  if (!Doc)
    return std::nullopt;
  if (Doc->tag() != "manifest") {
    Diags.error(Doc->loc(), "expected <manifest> root element");
    return std::nullopt;
  }

  Manifest Result;
  if (const std::string *Package = Doc->findAttr("package"))
    Result.Package = *Package;

  const xml::XmlNode *Application = nullptr;
  for (const auto &Child : Doc->children())
    if (Child->tag() == "application")
      Application = Child.get();
  if (!Application) {
    Diags.error(Doc->loc(), "manifest has no <application> element");
    return std::nullopt;
  }

  for (const auto &Child : Application->children()) {
    if (Child->tag() != "activity")
      continue;
    const std::string *Name = Child->findAttr("android:name");
    if (!Name) {
      Diags.warning(Child->loc(), "<activity> without android:name ignored");
      continue;
    }
    ManifestActivity Activity;
    Activity.ClassName = resolveName(*Name, Result.Package);
    for (const auto &Filter : Child->children())
      if (Filter->tag() == "intent-filter" &&
          intentFilterIsLauncher(*Filter))
        Activity.IsLauncher = true;
    Result.Activities.push_back(std::move(Activity));
  }
  return Result;
}
