file(REMOVE_RECURSE
  "CMakeFiles/connectbot_test.dir/connectbot_test.cpp.o"
  "CMakeFiles/connectbot_test.dir/connectbot_test.cpp.o.d"
  "connectbot_test"
  "connectbot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connectbot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
