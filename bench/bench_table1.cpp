//===- bench_table1.cpp - Reproduce Table 1 ---------------------*- C++ -*-===//
//
// Regenerates Table 1 of the paper: per-app application size (classes,
// methods) and the constraint-graph node inventory — layout/view id nodes,
// inflated vs. explicitly-allocated view nodes, listener allocation nodes,
// and operation nodes per category. The class/method columns are spec
// inputs (taken from the paper); the remaining columns are *measured* from
// the constraint graph the analysis builds, demonstrating the same
// structural claims the paper draws from this table: XML layouts are
// pervasive, view ids are numerous, most views are inflated but explicit
// allocation occurs in most apps, and add-child/set-listener operations
// are common.
//
//===----------------------------------------------------------------------===//

#include "analysis/AppStats.h"
#include "corpus/BatchRunner.h"

#include <cstdlib>
#include <iostream>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;

int main() {
  std::cout << "Table 1: analyzed applications and relevant constraint "
               "graph nodes\n\n";
  printAppStatsHeader(std::cout);

  unsigned AppsWithAllocViews = 0;
  unsigned AppsWithAddView = 0;

  // The corpus-wide run goes through the parallel batch layer
  // (docs/PARALLEL.md); GATOR_JOBS picks the worker count and never
  // changes a single number below.
  AnalysisOptions Options;
  if (const char *Env = std::getenv("GATOR_JOBS"))
    Options.Jobs = static_cast<unsigned>(std::strtoul(Env, nullptr, 10));
  // Stats-only consumer: drop each app's bundle and solution inside the
  // task so at most one app is resident per worker (KeepArtifacts=false).
  std::vector<BatchAppResult> Batch =
      analyzeCorpus(paperCorpus(), Options, nullptr, /*KeepArtifacts=*/false);

  for (const BatchAppResult &R : Batch) {
    if (R.GenerationFailed) {
      std::cerr << "generation failed for " << R.Name << "\n";
      R.App.Bundle->Diags.print(std::cerr);
      return 1;
    }
    printAppStatsRow(std::cout, R.Stats);
    if (R.Stats.AllocViews > 0)
      ++AppsWithAllocViews;
    if (R.Stats.OpAddView > 0)
      ++AppsWithAddView;
  }

  // The paper's structural observations over this table.
  std::cout << "\npaper: \"explicitly allocated views are also present in "
               "15 out of the 20 applications\"  -> measured: "
            << AppsWithAllocViews << "/20\n";
  std::cout << "paper: \"explicit manipulation of the view hierarchy via "
               "add-child operations occurs in all but four applications\" "
               "-> measured: "
            << AppsWithAddView << "/20\n";
  return 0;
}
