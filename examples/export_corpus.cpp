//===- export_corpus.cpp - Write the 20-app corpus to disk ------*- C++ -*-===//
//
// Serializes every corpus application to ALite text plus layout XML under
// an output directory, one subdirectory per app:
//
//   export_corpus <outdir>
//   gator_cli <outdir>/XBMC --solution    # analyze any exported app
//
// Exercises both serialization directions of the frontend (the printer
// round-trips with the parser; the layout writer with the layout reader).
//
// Apps are exported in crash isolation: a failure in one app (generation
// diagnostics, I/O, or an escaped exception) is reported and the remaining
// apps still export. Exit codes follow the gator_cli contract — 0 clean,
// 1 diagnostics/I/O failures, 2 internal errors — taking the maximum over
// all apps.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "layout/LayoutWriter.h"
#include "parser/Printer.h"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

using namespace gator;
namespace fs = std::filesystem;

namespace {

/// Exports one corpus app; returns 0/1 per the exit-code contract.
int exportOneApp(const corpus::AppSpec &Spec, const fs::path &OutDir) {
  corpus::GeneratedApp App = corpus::generateApp(Spec);
  if (App.Bundle->Diags.hasErrors()) {
    App.Bundle->Diags.print(std::cerr);
    return 1;
  }

  fs::path AppDir = OutDir / Spec.Name;
  std::error_code EC;
  fs::create_directories(AppDir, EC);
  if (EC) {
    std::cerr << "error: cannot create " << AppDir << ": " << EC.message()
              << "\n";
    return 1;
  }

  {
    std::ofstream Out(AppDir / "app.alite");
    if (!Out) {
      std::cerr << "error: cannot write app.alite for " << Spec.Name << "\n";
      return 1;
    }
    parser::printProgram(App.Bundle->Program, Out);
  }
  for (const auto &Def : App.Bundle->Layouts->layouts()) {
    std::ofstream Out(AppDir / (Def->name() + ".xml"));
    Out << layout::layoutToXml(*Def);
  }
  {
    // Manifest: every activity declared, Activity0 as the launcher.
    std::ofstream Out(AppDir / "AndroidManifest.xml");
    Out << "<manifest package=\"corpus." << Spec.Name << "\">\n"
        << "  <application>\n";
    for (unsigned I = 0; I < Spec.Activities; ++I) {
      Out << "    <activity android:name=\"" << Spec.Name << "Activity"
          << I << "\"";
      if (I == 0)
        Out << ">\n"
            << "      <intent-filter>\n"
            << "        <action android:name=\"android.intent.action."
               "MAIN\" />\n"
            << "        <category android:name=\"android.intent.category."
               "LAUNCHER\" />\n"
            << "      </intent-filter>\n"
            << "    </activity>\n";
      else
        Out << " />\n";
    }
    Out << "  </application>\n</manifest>\n";
  }
  std::cout << Spec.Name << ": "
            << App.Bundle->Program.appClassCount() << " classes, "
            << App.Bundle->Layouts->layouts().size() << " layouts -> "
            << AppDir.string() << "\n";
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc != 2) {
    std::cerr << "usage: export_corpus <outdir>\n";
    return 2;
  }
  fs::path OutDir = argv[1];

  int Worst = 0;
  std::vector<std::string> Failed;
  for (const corpus::AppSpec &Spec : corpus::paperCorpus()) {
    int Code;
    try {
      Code = exportOneApp(Spec, OutDir);
    } catch (const std::exception &E) {
      std::cerr << "internal error exporting '" << Spec.Name
                << "': " << E.what() << "\n";
      Code = 2;
    } catch (...) {
      std::cerr << "internal error exporting '" << Spec.Name << "'\n";
      Code = 2;
    }
    if (Code != 0)
      Failed.push_back(Spec.Name);
    Worst = std::max(Worst, Code);
  }
  if (!Failed.empty()) {
    std::cerr << "failed apps (" << Failed.size() << "):";
    for (const std::string &Name : Failed)
      std::cerr << " " << Name;
    std::cerr << "\n";
  }
  return Worst;
}
