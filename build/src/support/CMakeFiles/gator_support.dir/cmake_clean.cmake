file(REMOVE_RECURSE
  "CMakeFiles/gator_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/gator_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/gator_support.dir/SourceLocation.cpp.o"
  "CMakeFiles/gator_support.dir/SourceLocation.cpp.o.d"
  "CMakeFiles/gator_support.dir/StringInterner.cpp.o"
  "CMakeFiles/gator_support.dir/StringInterner.cpp.o.d"
  "libgator_support.a"
  "libgator_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
