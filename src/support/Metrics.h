//===- Metrics.h - Typed metrics registry -----------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small typed metrics registry (docs/OBSERVABILITY.md): counters
/// (monotone sums), gauges (point samples with an explicit merge policy),
/// and histograms with fixed bucket bounds. The analysis drivers populate
/// one registry per run; the parallel batch drivers populate one registry
/// per task and fold them with mergeFrom() in input order, so the exported
/// document is byte-identical for every job count.
///
/// Export formats:
///  - writeJson(): one JSON object per instrument, sorted by (name, label)
///    for deterministic output;
///  - writePrometheus(): the Prometheus text exposition format
///    (# HELP / # TYPE lines, histogram _bucket/_sum/_count series).
///
/// Instruments carry a unit; Seconds-unit instruments hold wall-clock
/// measurements and are skipped entirely when the caller exports with
/// IncludeTimes = false (the CLI's --no-times contract: golden-file tests
/// compare telemetry byte-for-byte).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_METRICS_H
#define GATOR_SUPPORT_METRICS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace gator {
namespace support {

enum class MetricUnit : uint8_t {
  None,    ///< dimensionless count
  Seconds, ///< wall-clock time; suppressed by IncludeTimes = false
  Bytes,   ///< deterministic memory accounting (arena bytes)
  /// Machine-dependent byte sample (peak RSS): varies with thread count
  /// and allocator behavior, so it is suppressed by IncludeTimes = false
  /// together with wall-clock — the determinism contract for --no-times
  /// exports (docs/OBSERVABILITY.md) covers only reproducible values.
  BytesVolatile,
};

/// The process's peak resident set size in bytes (getrusage ru_maxrss),
/// or 0 where unavailable. A high-water mark, monotone over the process
/// lifetime — callers that want a per-phase peak sample it before/after.
uint64_t currentPeakRssBytes();

/// Monotonically increasing sum. Merges by addition.
class Counter {
public:
  void add(uint64_t Delta) { Val += Delta; }
  void inc() { ++Val; }
  uint64_t value() const { return Val; }

private:
  uint64_t Val = 0;
};

/// A point sample. Merge::Max keeps the largest value across merges
/// (peaks like PeakSetSize); Merge::Sum accumulates (real-valued totals
/// like phase seconds); Merge::Last keeps the most recent sample.
class Gauge {
public:
  enum class Merge : uint8_t { Max, Sum, Last };

  void set(double V) { Val = V; }
  void setMax(double V) {
    if (V > Val)
      Val = V;
  }
  void add(double V) { Val += V; }
  double value() const { return Val; }

private:
  double Val = 0;
};

/// Fixed-bound histogram: Counts[i] counts observations <= Bounds[i], the
/// final slot counts the overflow (the Prometheus +Inf bucket). Bucket
/// counts are NOT cumulative in memory; exporters cumulate on the fly.
class Histogram {
public:
  explicit Histogram(std::vector<uint64_t> UpperBounds)
      : Bounds(std::move(UpperBounds)), Counts(Bounds.size() + 1, 0) {}
  Histogram() : Histogram(std::vector<uint64_t>{}) {}

  void observe(uint64_t V) {
    size_t I = 0;
    while (I < Bounds.size() && V > Bounds[I])
      ++I;
    ++Counts[I];
    Sum += V;
    ++Count;
  }

  const std::vector<uint64_t> &bounds() const { return Bounds; }
  const std::vector<uint64_t> &bucketCounts() const { return Counts; }
  uint64_t sum() const { return Sum; }
  uint64_t count() const { return Count; }

  /// Bucket-wise addition; both histograms must share bounds.
  void merge(const Histogram &Other);

  /// Quantile estimate from the fixed buckets, Prometheus
  /// histogram_quantile style: find the bucket where the cumulative count
  /// crosses Q * count, then interpolate linearly inside it. The +Inf
  /// bucket clamps to the highest finite bound (the honest answer a
  /// bounded histogram can give). Deterministic: derived purely from the
  /// merged bucket counts, so a parallel batch's quantiles equal the
  /// serial run's. Returns 0 on an empty histogram.
  double quantile(double Q) const;

  /// Folds previously captured raw bucket data back in — the cache-replay
  /// path (docs/INCREMENTAL.md): a warm hit re-contributes the cold run's
  /// observations without a Solution to observe. Returns false and leaves
  /// the histogram untouched when \p RawCounts does not match this
  /// histogram's bucket count (including the overflow slot).
  bool addRaw(const std::vector<uint64_t> &RawCounts, uint64_t RawSum,
              uint64_t RawCount);

private:
  std::vector<uint64_t> Bounds;
  std::vector<uint64_t> Counts;
  uint64_t Sum = 0;
  uint64_t Count = 0;
};

/// The registry. Instruments are identified by (name, one optional
/// label); repeated registration returns the existing instrument, which
/// is what lets per-app recording helpers run once per app against a
/// shared registry.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name, const std::string &Help,
                   MetricUnit Unit = MetricUnit::None,
                   const std::string &LabelKey = std::string(),
                   const std::string &LabelValue = std::string());

  Gauge &gauge(const std::string &Name, const std::string &Help,
               Gauge::Merge Merge = Gauge::Merge::Max,
               MetricUnit Unit = MetricUnit::None);

  Histogram &histogram(const std::string &Name, const std::string &Help,
                       const std::vector<uint64_t> &UpperBounds);

  /// Folds \p Other into this registry: counters add, gauges apply their
  /// merge policy, histograms add bucket-wise. Commutative and
  /// associative over counters/histograms/Max gauges, so a parallel
  /// batch's merged registry is independent of task scheduling.
  void mergeFrom(const MetricsRegistry &Other);

  /// JSON document: {"metrics":[{name, type, help, value|buckets...}]}.
  /// Instruments sorted by (name, label). Seconds-unit instruments are
  /// omitted when \p IncludeTimes is false.
  void writeJson(std::ostream &OS, bool IncludeTimes = true) const;

  /// Prometheus text exposition format (version 0.0.4).
  void writePrometheus(std::ostream &OS, bool IncludeTimes = true) const;

  size_t instrumentCount() const { return Instruments.size(); }

private:
  enum class Kind : uint8_t { Counter, Gauge, Histogram };

  struct Instrument {
    std::string Name;
    std::string Help;
    std::string LabelKey, LabelValue;
    Kind K = Kind::Counter;
    MetricUnit Unit = MetricUnit::None;
    Gauge::Merge GaugeMerge = Gauge::Merge::Max;
    Counter C;
    Gauge G;
    Histogram H;
  };

  Instrument &intern(const std::string &Name, const std::string &Help,
                     Kind K, MetricUnit Unit, const std::string &LabelKey,
                     const std::string &LabelValue);

  /// Indices into Instruments sorted by (Name, LabelValue).
  std::vector<size_t> sortedIndices(bool IncludeTimes) const;

  std::vector<Instrument> Instruments;
  /// (name + '\0' + labelValue) -> index into Instruments.
  std::map<std::string, size_t> Index;
};

} // namespace support
} // namespace gator

#endif // GATOR_SUPPORT_METRICS_H
