//===- Printer.cpp - ALite serializer ---------------------------*- C++ -*-===//

#include "parser/Printer.h"

#include <sstream>

using namespace gator;
using namespace gator::parser;
using namespace gator::ir;

static const char *varName(const MethodDecl &M, VarId Id) {
  return M.var(Id).Name.c_str();
}

void gator::parser::printStmt(const MethodDecl &M, const Stmt &S,
                              std::ostream &OS) {
  switch (S.Kind) {
  case StmtKind::AssignVar:
    OS << varName(M, S.Lhs) << " := " << varName(M, S.Base) << ";";
    break;
  case StmtKind::AssignNew:
    OS << varName(M, S.Lhs) << " := new " << S.ClassName << ";";
    break;
  case StmtKind::AssignNull:
    OS << varName(M, S.Lhs) << " := null;";
    break;
  case StmtKind::LoadField:
    OS << varName(M, S.Lhs) << " := " << varName(M, S.Base) << "."
       << S.FieldName << ";";
    break;
  case StmtKind::StoreField:
    OS << varName(M, S.Base) << "." << S.FieldName << " := "
       << varName(M, S.Rhs) << ";";
    break;
  case StmtKind::LoadStaticField:
    OS << varName(M, S.Lhs) << " := static " << S.ClassName << "."
       << S.FieldName << ";";
    break;
  case StmtKind::StoreStaticField:
    OS << "static " << S.ClassName << "." << S.FieldName << " := "
       << varName(M, S.Rhs) << ";";
    break;
  case StmtKind::AssignLayoutId:
    OS << varName(M, S.Lhs) << " := @layout/" << S.ResourceName << ";";
    break;
  case StmtKind::AssignViewId:
    OS << varName(M, S.Lhs) << " := @id/" << S.ResourceName << ";";
    break;
  case StmtKind::AssignClassConst:
    OS << varName(M, S.Lhs) << " := classof " << S.ClassName << ";";
    break;
  case StmtKind::Invoke: {
    if (S.Lhs != InvalidVar)
      OS << varName(M, S.Lhs) << " := ";
    OS << varName(M, S.Base) << "." << S.MethodName << "(";
    for (size_t I = 0; I < S.Args.size(); ++I) {
      if (I)
        OS << ", ";
      OS << varName(M, S.Args[I]);
    }
    OS << ");";
    break;
  }
  case StmtKind::Return:
    OS << "return";
    if (S.Lhs != InvalidVar)
      OS << ' ' << varName(M, S.Lhs);
    OS << ";";
    break;
  }
}

static void printMethod(const MethodDecl &M, std::ostream &OS) {
  OS << "  method ";
  if (M.isStatic())
    OS << "static ";
  OS << M.name() << "(";
  for (unsigned I = 0; I < M.paramCount(); ++I) {
    if (I)
      OS << ", ";
    const Variable &Prm = M.var(M.paramVar(I));
    OS << Prm.Name << ": "
       << (Prm.TypeName.empty() ? ObjectClassName : Prm.TypeName.c_str());
  }
  OS << ")";
  if (M.returnTypeName() != VoidTypeName)
    OS << ": " << M.returnTypeName();

  if (M.isAbstract()) {
    OS << ";\n";
    return;
  }
  OS << " {\n";
  // Declare locals (everything that is neither `this` nor a parameter).
  for (const Variable &V : M.vars()) {
    if (V.IsThis || V.IsParam)
      continue;
    OS << "    var " << V.Name << ": "
       << (V.TypeName.empty() ? ObjectClassName : V.TypeName.c_str()) << ";\n";
  }
  for (const Stmt &S : M.body()) {
    OS << "    ";
    printStmt(M, S, OS);
    OS << '\n';
  }
  OS << "  }\n";
}

void gator::parser::printClass(const ClassDecl &C, std::ostream &OS) {
  if (C.isPlatform())
    OS << "platform ";
  OS << (C.isInterface() ? "interface " : "class ") << C.name();
  if (!C.superName().empty())
    OS << " extends " << C.superName();
  if (!C.interfaceNames().empty()) {
    OS << " implements ";
    for (size_t I = 0; I < C.interfaceNames().size(); ++I) {
      if (I)
        OS << ", ";
      OS << C.interfaceNames()[I];
    }
  }
  OS << " {\n";
  for (const auto &F : C.fields()) {
    OS << "  field ";
    if (F->isStatic())
      OS << "static ";
    OS << F->name() << ": "
       << (F->typeName().empty() ? ObjectClassName : F->typeName().c_str())
       << ";\n";
  }
  for (const auto &M : C.methods())
    printMethod(*M, OS);
  OS << "}\n";
}

void gator::parser::printProgram(const Program &P, std::ostream &OS,
                                 const PrintOptions &Options) {
  bool First = true;
  for (const auto &C : P.classes()) {
    if (C->isPlatform() && !Options.IncludePlatformClasses)
      continue;
    if (!First)
      OS << '\n';
    First = false;
    printClass(*C, OS);
  }
}

std::string gator::parser::programToString(const Program &P,
                                           const PrintOptions &Options) {
  std::ostringstream OS;
  printProgram(P, OS, Options);
  return OS.str();
}
