//===- GuiModel.h - Client analyses over the GUI solution -------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Client analyses from Section 6 of the paper, built on top of the GUI
/// reference analysis solution:
///
///  - Handler tuples: the set of (activity a, GUI object v, event e,
///    handler method h) tuples "where v is visible when a is active, and
///    event e on v is handled by h" — the exact model input the concolic
///    test-generation work [12] constructed manually.
///  - View hierarchy reconstruction: the static parent-child forest per
///    activity (reverse-engineering / GUI-model clients [26]).
///  - Activity transition graph: edges a -> b labeled by the GUI event
///    whose handler starts activity b (the SCanDroid/A3E-style model,
///    Section 6, first and second paragraphs).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_GUIMODEL_GUIMODEL_H
#define GATOR_GUIMODEL_GUIMODEL_H

#include "analysis/GuiAnalysis.h"

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace gator {
namespace guimodel {

/// One (activity, view, event, handler) tuple.
struct HandlerTuple {
  /// The activity whose hierarchy contains the view; null when the view is
  /// not attached to any activity root ("floating" views).
  const ir::ClassDecl *Activity = nullptr;
  graph::NodeId View = graph::InvalidNode;
  android::EventKind Event = android::EventKind::Click;
  /// The listener object value.
  graph::NodeId Listener = graph::InvalidNode;
  /// The application method handling the event (resolved on the listener's
  /// class); null when the listener class has no concrete handler.
  const ir::MethodDecl *Handler = nullptr;
};

/// Extracts all handler tuples from a completed analysis.
std::vector<HandlerTuple> extractHandlerTuples(const analysis::AnalysisResult
                                                   &Result);

/// Prints tuples one per line: "activity | view | event | handler".
void printHandlerTuples(std::ostream &OS,
                        const analysis::AnalysisResult &Result,
                        const std::vector<HandlerTuple> &Tuples);

//===----------------------------------------------------------------------===//
// View hierarchy
//===----------------------------------------------------------------------===//

/// Prints each activity's static view hierarchy as an indented tree.
/// Views reachable through several parents are printed under each (the
/// static parent-child relation is a conservative DAG).
void printViewHierarchies(std::ostream &OS,
                          const analysis::AnalysisResult &Result);

//===----------------------------------------------------------------------===//
// Activity transition graph
//===----------------------------------------------------------------------===//

/// One transition: while activity From is active, Event on a view (or a
/// lifecycle callback when Event is nullopt) can start activity To.
struct Transition {
  const ir::ClassDecl *From = nullptr;
  std::optional<android::EventKind> Event;
  const ir::ClassDecl *To = nullptr;
};

/// Builds the activity transition graph: for each handler tuple (a,v,e,h)
/// and lifecycle callback, every startActivity(intent) site reachable from
/// the handler through application calls contributes an edge to each
/// activity class the intent can target (via setClass class constants).
std::vector<Transition>
buildActivityTransitionGraph(const analysis::AnalysisResult &Result);

/// Prints the transition graph in DOT format.
void printTransitionsDot(std::ostream &OS,
                         const std::vector<Transition> &Transitions);

//===----------------------------------------------------------------------===//
// Event-sequence enumeration (run-time exploration / test generation)
//===----------------------------------------------------------------------===//

/// One step of a GUI exploration: fire Event on View while From is the
/// active activity, landing in To.
struct EventStep {
  const ir::ClassDecl *From = nullptr;
  graph::NodeId View = graph::InvalidNode;
  android::EventKind Event = android::EventKind::Click;
  const ir::ClassDecl *To = nullptr;
};

/// A feasible sequence of GUI events starting from \p start.
using EventSequence = std::vector<EventStep>;

/// Enumerates all event sequences of length up to \p MaxLength starting
/// at \p Start, following handler tuples whose handlers transition
/// between activities (the A3E-style exploration plans Section 6
/// describes; the cited concolic test-generation work consumes exactly
/// these (activity, view, event, handler) paths). Sequences are capped
/// at \p MaxSequences to bound output on cyclic transition graphs.
std::vector<EventSequence>
enumerateEventSequences(const analysis::AnalysisResult &Result,
                        const ir::ClassDecl *Start, unsigned MaxLength,
                        unsigned MaxSequences = 256);

/// Prints sequences one per line: "A1 --click[Button#ok]--> A2 ...".
void printEventSequences(std::ostream &OS,
                         const analysis::AnalysisResult &Result,
                         const std::vector<EventSequence> &Sequences);

//===----------------------------------------------------------------------===//
// View-reach report (data-flow motivation of Sections 1/3)
//===----------------------------------------------------------------------===//

/// For each view of an "input" widget class (EditText by default), the
/// application methods that can observe the view object — the static
/// skeleton of the paper's motivating data flow ("text entered by the
/// user ... flows from that view, via the event handler, to the rest of
/// the application").
struct ViewReach {
  graph::NodeId View = graph::InvalidNode;
  std::vector<const ir::MethodDecl *> Methods; ///< deduplicated, ordered
};

std::vector<ViewReach>
computeViewReach(const analysis::AnalysisResult &Result,
                 const std::string &WidgetClassName =
                     "android.widget.EditText");

void printViewReach(std::ostream &OS, const analysis::AnalysisResult &Result,
                    const std::vector<ViewReach> &Reaches);

} // namespace guimodel
} // namespace gator

#endif // GATOR_GUIMODEL_GUIMODEL_H
