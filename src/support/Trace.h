//===- Trace.h - Structured span/event tracing ------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-confined span/event recorder for the analysis pipeline
/// (docs/OBSERVABILITY.md). One TraceSink belongs to exactly one run (one
/// app analysis, or one whole CLI invocation): events append to a plain
/// vector with no locking — the parallel batch drivers give every task its
/// own sink and merge them in input order afterwards, the same ordered
/// merge that makes batch stdout deterministic (docs/PARALLEL.md).
///
/// Tracing is opt-in by existence: code paths hold a `TraceSink *` that is
/// null when tracing is off, and every hook (TraceSpan construction,
/// counter/instant events) starts with one null check, so the disabled
/// cost is a predicted-not-taken branch — measured within noise on
/// BM_AnalyzeByActivities/64 (bench/BENCH_observability.json).
///
/// writeJson() emits the Chrome trace-event format ("traceEvents" array of
/// objects with name/ph/ts/pid/tid), loadable in Perfetto or
/// chrome://tracing. Timestamps are microseconds since the sink's epoch;
/// they are the one nondeterministic output, which the determinism harness
/// normalizes before comparing runs.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_TRACE_H
#define GATOR_SUPPORT_TRACE_H

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace gator {
namespace support {

/// Collects trace events for one run. Not thread-safe by design: confine
/// one sink to one thread and merge with append().
class TraceSink {
public:
  /// One Chrome-trace event. Ph follows the trace-event format: 'X' =
  /// complete span (Ts + Dur), 'C' = counter sample, 'i' = instant.
  struct Event {
    std::string Name;
    char Ph = 'X';
    uint64_t TsMicros = 0;
    uint64_t DurMicros = 0;
    uint32_t Tid = 0;
    /// Numeric annotations ("args" in the trace format): counter values,
    /// span statistics. Deterministic — never wall-clock derived.
    std::vector<std::pair<std::string, uint64_t>> Args;
  };

  TraceSink() : Epoch(Clock::now()) {}

  TraceSink(TraceSink &&) = default;
  TraceSink &operator=(TraceSink &&) = default;
  TraceSink(const TraceSink &) = delete;
  TraceSink &operator=(const TraceSink &) = delete;

  /// Microseconds since this sink's construction.
  uint64_t nowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              Epoch)
            .count());
  }

  /// Records a complete span ('X') that started at \p StartMicros.
  Event &complete(std::string Name, uint64_t StartMicros) {
    Events.push_back(Event{std::move(Name), 'X', StartMicros,
                           nowMicros() - StartMicros, 0, {}});
    return Events.back();
  }

  /// Records a counter sample ('C').
  void counter(std::string Name, uint64_t Value) {
    Event E{std::move(Name), 'C', nowMicros(), 0, 0, {}};
    E.Args.emplace_back("value", Value);
    Events.push_back(std::move(E));
  }

  /// Records an instant event ('i').
  Event &instant(std::string Name) {
    Events.push_back(Event{std::move(Name), 'i', nowMicros(), 0, 0, {}});
    return Events.back();
  }

  /// Moves every event of \p Child into this sink, retagging them with
  /// logical lane \p Tid. Called in input order by the batch drivers, so
  /// the merged event sequence is independent of scheduling; child
  /// timestamps keep their own epoch (normalized by consumers that
  /// compare runs).
  void append(TraceSink &&Child, uint32_t Tid);

  const std::vector<Event> &events() const { return Events; }
  size_t eventCount() const { return Events.size(); }

  /// Writes the Chrome trace-event JSON document. Every event carries the
  /// name/ph/ts/pid/tid fields (plus dur for spans and args when present).
  void writeJson(std::ostream &OS) const;

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Epoch;
  std::vector<Event> Events;
};

/// RAII span: records a complete event over its lifetime when the sink is
/// non-null; a no-op otherwise. Annotate with arg() before destruction.
class TraceSpan {
public:
  TraceSpan(TraceSink *Sink, const char *Name) : Sink(Sink), Name(Name) {
    if (Sink)
      StartMicros = Sink->nowMicros();
  }
  ~TraceSpan() {
    if (!Sink)
      return;
    TraceSink::Event &E = Sink->complete(Name, StartMicros);
    E.Args = std::move(Args);
  }

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches a numeric annotation to the span being recorded.
  void arg(const char *Key, uint64_t Value) {
    if (Sink)
      Args.emplace_back(Key, Value);
  }

private:
  TraceSink *Sink;
  const char *Name;
  uint64_t StartMicros = 0;
  std::vector<std::pair<std::string, uint64_t>> Args;
};

} // namespace support
} // namespace gator

#endif // GATOR_SUPPORT_TRACE_H
