file(REMOVE_RECURSE
  "CMakeFiles/gator_layout.dir/Layout.cpp.o"
  "CMakeFiles/gator_layout.dir/Layout.cpp.o.d"
  "CMakeFiles/gator_layout.dir/LayoutWriter.cpp.o"
  "CMakeFiles/gator_layout.dir/LayoutWriter.cpp.o.d"
  "CMakeFiles/gator_layout.dir/ResourceTable.cpp.o"
  "CMakeFiles/gator_layout.dir/ResourceTable.cpp.o.d"
  "libgator_layout.a"
  "libgator_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
