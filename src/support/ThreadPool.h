//===- ThreadPool.h - Parallel batch execution layer ------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel execution layer for multi-app drivers (docs/PARALLEL.md).
/// The paper's evaluation analyzes each app of the corpus independently —
/// an embarrassingly parallel workload — so every batch code path
/// (`gator_cli --batch`, corpus-wide runs, `export_corpus`, the benches)
/// fans out over a ThreadPool through parallelFor/parallelMap.
///
/// Contract: one task = one whole-app analysis, thread-confined (its own
/// AppBundle, DiagnosticEngine, and BudgetTracker; nothing mutable is
/// shared across tasks). Results are indexed records the caller merges in
/// input order, so output is byte-identical for every job count. Jobs == 1
/// is an exact serial fallback: the body runs inline on the calling
/// thread, in index order, with no pool and no synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_THREADPOOL_H
#define GATOR_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gator {
namespace support {

/// Upper bound a driver should accept for a jobs knob; anything above is a
/// configuration mistake (a typo'd `-j 80000`), not a real machine, and is
/// rejected with a diagnostic rather than silently clamped.
inline constexpr unsigned MaxReasonableJobs = 512;

/// Resolves a user-facing jobs knob: 0 means "use the hardware", anything
/// else is taken literally. Never returns 0.
unsigned resolveJobs(unsigned Requested);

/// A fixed set of worker threads draining one FIFO task queue. Workers
/// start in the constructor and join in the destructor; tasks submitted
/// after shutdown began are rejected (dropped) rather than deadlocking.
///
/// An exception escaping a task is captured (the pool must survive any
/// task), retrievable via takeExceptions() in completion order. Callers
/// needing deterministic attribution should catch per task themselves —
/// parallelFor below does, per index.
class ThreadPool {
public:
  /// Starts \p Workers threads (at least one).
  explicit ThreadPool(unsigned Workers);

  /// Waits for every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues one task. Thread-safe; may be called from inside a task.
  void submit(std::function<void()> Task);

  /// Blocks until the queue is empty and no task is running.
  void wait();

  unsigned workerCount() const { return static_cast<unsigned>(Threads.size()); }

  /// Tasks completed by each worker so far (index = worker). Call after
  /// wait() for stable values; the strong-scaling bench reports these.
  std::vector<unsigned long> tasksExecuted() const;

  /// Exceptions captured from tasks since the last call, in the order the
  /// tasks happened to complete (not deterministic across runs).
  std::vector<std::exception_ptr> takeExceptions();

private:
  void workerLoop(unsigned WorkerIndex);

  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllIdle;
  std::deque<std::function<void()>> Queue;
  std::vector<std::exception_ptr> Exceptions;
  std::vector<unsigned long> Executed; ///< per-worker completed-task counts
  size_t InFlight = 0;                 ///< tasks popped but not finished
  bool Stopping = false;
  std::vector<std::thread> Threads; ///< last: workers see members above
};

/// How a parallelFor call actually ran — worker count after resolving the
/// jobs knob against the item count, and tasks completed per worker (the
/// per-worker split is scheduling-dependent; totals are not).
struct ParallelForStats {
  unsigned WorkersUsed = 1;
  std::vector<unsigned long> TasksPerWorker;
};

/// Runs Body(0) .. Body(N-1) on up to \p Jobs workers (0 = hardware
/// concurrency). Jobs <= 1 or N <= 1 runs inline on the calling thread in
/// index order — the exact serial path, no pool constructed. Each index's
/// exception is captured in a per-index slot; after every index finished
/// or failed, the lowest-index exception is rethrown, so failure
/// attribution is deterministic regardless of scheduling.
ParallelForStats parallelFor(unsigned Jobs, size_t N,
                             const std::function<void(size_t)> &Body);

/// Grained parallel for: runs Body(0) .. Body(N-1) scheduled as contiguous
/// chunks of up to \p Grain indices per task, so tiny work items (a few
/// hundred nanoseconds each — one SCC's worth of push classification, one
/// fleet-spec expansion) amortize the queue round-trip instead of paying
/// it per index. Jobs <= 1 or N <= Grain runs inline on the calling thread
/// in index order — the exact serial path, no pool constructed. Grain 0 is
/// treated as 1. Exceptions are captured per chunk and the lowest-index
/// chunk's exception is rethrown after every chunk finished, so failure
/// attribution is deterministic regardless of scheduling.
ParallelForStats parallelForGrained(unsigned Jobs, size_t N, size_t Grain,
                                    const std::function<void(size_t)> &Body);

/// parallelForGrained over an existing pool (no per-call thread spawn):
/// the form the solver's round-based engine uses, where one ThreadPool
/// outlives hundreds of classification rounds (docs/PARALLEL.md). The
/// call is a barrier — it returns only after every chunk completed — and
/// N <= Grain still runs inline without touching the pool. The pool must
/// be otherwise idle: chunk completion is detected with Pool.wait().
void parallelForGrained(ThreadPool &Pool, size_t N, size_t Grain,
                        const std::function<void(size_t, size_t)> &Chunk);

/// parallelFor producing a value per index, in index order. Result must be
/// default-constructible and movable. \p Stats, when non-null, receives
/// the run's ParallelForStats.
template <typename Result, typename Fn>
std::vector<Result> parallelMap(unsigned Jobs, size_t N, Fn &&Body,
                                ParallelForStats *Stats = nullptr) {
  std::vector<Result> Out(N);
  ParallelForStats S =
      parallelFor(Jobs, N, [&](size_t I) { Out[I] = Body(I); });
  if (Stats)
    *Stats = std::move(S);
  return Out;
}

} // namespace support
} // namespace gator

#endif // GATOR_SUPPORT_THREADPOOL_H
