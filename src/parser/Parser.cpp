//===- Parser.cpp - ALite textual frontend ----------------------*- C++ -*-===//

#include "parser/Parser.h"

using namespace gator;
using namespace gator::parser;
using namespace gator::ir;

namespace {

class AliteParser {
public:
  AliteParser(std::vector<Token> Tokens, Program &P, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), P(P), Diags(Diags) {}

  bool run() {
    while (!at(TokenKind::EndOfFile)) {
      if (!parseDecl())
        syncToDeclEnd();
    }
    return Ok;
  }

private:
  //===--------------------------------------------------------------------===//
  // Token helpers
  //===--------------------------------------------------------------------===//

  const Token &cur() const { return Tokens[Index]; }
  const Token &lookahead(size_t N = 1) const {
    size_t I = Index + N;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokenKind Kind) const { return cur().is(Kind); }

  Token take() {
    Token T = cur();
    if (!at(TokenKind::EndOfFile))
      ++Index;
    return T;
  }

  bool accept(TokenKind Kind) {
    if (!at(Kind))
      return false;
    take();
    return true;
  }

  bool expect(TokenKind Kind, const char *Context) {
    if (accept(Kind))
      return true;
    error(std::string("expected ") + tokenKindName(Kind) + " " + Context +
          ", found " + tokenKindName(cur().Kind));
    return false;
  }

  void error(const std::string &Message) {
    Diags.error(cur().Loc, Message);
    Ok = false;
  }

  /// Panic-mode recovery: skip to the end of the current brace-balanced
  /// declaration.
  void syncToDeclEnd() {
    int Depth = 0;
    while (!at(TokenKind::EndOfFile)) {
      if (at(TokenKind::LBrace))
        ++Depth;
      if (at(TokenKind::RBrace)) {
        --Depth;
        take();
        if (Depth <= 0)
          return;
        continue;
      }
      take();
      if (Depth == 0 && (at(TokenKind::KwClass) || at(TokenKind::KwInterface) ||
                         at(TokenKind::KwPlatform)))
        return;
    }
  }

  /// Skip to just past the next ';' (or stop before '}').
  void syncToStmtEnd() {
    while (!at(TokenKind::EndOfFile) && !at(TokenKind::RBrace)) {
      if (accept(TokenKind::Semicolon))
        return;
      take();
    }
  }

  //===--------------------------------------------------------------------===//
  // Names and types
  //===--------------------------------------------------------------------===//

  /// qname := ident ("." ident)*
  bool parseQName(std::string &Out, const char *Context) {
    if (!at(TokenKind::Identifier)) {
      error(std::string("expected name ") + Context);
      return false;
    }
    Out = take().Text;
    while (at(TokenKind::Dot) && lookahead().is(TokenKind::Identifier)) {
      take(); // '.'
      Out += '.';
      Out += take().Text;
    }
    return true;
  }

  /// Splits "a.b.C.f" into class "a.b.C" and member "f".
  static bool splitLastComponent(const std::string &QName, std::string &Prefix,
                                 std::string &Last) {
    size_t Pos = QName.rfind('.');
    if (Pos == std::string::npos || Pos + 1 >= QName.size())
      return false;
    Prefix = QName.substr(0, Pos);
    Last = QName.substr(Pos + 1);
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  bool parseDecl() {
    bool IsPlatform = accept(TokenKind::KwPlatform);
    bool IsInterface;
    if (accept(TokenKind::KwClass)) {
      IsInterface = false;
    } else if (accept(TokenKind::KwInterface)) {
      IsInterface = true;
    } else {
      error("expected 'class' or 'interface'");
      return false;
    }

    std::string Name;
    if (!parseQName(Name, "after 'class'/'interface'"))
      return false;

    ClassDecl *C = P.addClass(Name, IsInterface, IsPlatform, &Diags);
    if (!C) {
      Ok = false;
      return false;
    }

    if (accept(TokenKind::KwExtends)) {
      std::string Super;
      if (!parseQName(Super, "after 'extends'"))
        return false;
      C->setSuperName(Super);
    }
    if (accept(TokenKind::KwImplements)) {
      do {
        std::string Iface;
        if (!parseQName(Iface, "after 'implements'"))
          return false;
        C->addInterfaceName(Iface);
      } while (accept(TokenKind::Comma));
    }

    if (!expect(TokenKind::LBrace, "to open class body"))
      return false;
    while (!at(TokenKind::RBrace) && !at(TokenKind::EndOfFile)) {
      if (!parseMember(*C))
        syncToStmtEnd();
    }
    return expect(TokenKind::RBrace, "to close class body");
  }

  bool parseMember(ClassDecl &C) {
    if (accept(TokenKind::KwField))
      return parseField(C);
    if (accept(TokenKind::KwMethod))
      return parseMethod(C);
    error("expected 'field' or 'method' in class body");
    return false;
  }

  bool parseField(ClassDecl &C) {
    bool IsStatic = accept(TokenKind::KwStatic);
    if (!at(TokenKind::Identifier)) {
      error("expected field name");
      return false;
    }
    std::string Name = take().Text;
    if (!expect(TokenKind::Colon, "after field name"))
      return false;
    std::string TypeName;
    if (!parseQName(TypeName, "as field type"))
      return false;
    if (!expect(TokenKind::Semicolon, "after field declaration"))
      return false;
    C.addField(std::move(Name), std::move(TypeName), IsStatic);
    return true;
  }

  bool parseMethod(ClassDecl &C) {
    bool IsStatic = accept(TokenKind::KwStatic);
    if (!at(TokenKind::Identifier)) {
      error("expected method name");
      return false;
    }
    std::string Name = take().Text;
    if (!expect(TokenKind::LParen, "after method name"))
      return false;

    struct Param {
      std::string Name, TypeName;
    };
    std::vector<Param> Params;
    if (!at(TokenKind::RParen)) {
      do {
        if (!at(TokenKind::Identifier)) {
          error("expected parameter name");
          return false;
        }
        Param Prm;
        Prm.Name = take().Text;
        if (!expect(TokenKind::Colon, "after parameter name"))
          return false;
        if (!parseQName(Prm.TypeName, "as parameter type"))
          return false;
        Params.push_back(std::move(Prm));
      } while (accept(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "to close parameter list"))
      return false;

    std::string RetType = VoidTypeName;
    if (accept(TokenKind::Colon)) {
      if (!parseQName(RetType, "as return type"))
        return false;
    }

    MethodDecl *M = C.addMethod(std::move(Name), std::move(RetType), IsStatic);
    for (Param &Prm : Params)
      M->addParam(std::move(Prm.Name), std::move(Prm.TypeName));

    if (accept(TokenKind::Semicolon)) {
      M->setAbstract(true);
      return true;
    }
    if (!expect(TokenKind::LBrace, "to open method body"))
      return false;
    while (!at(TokenKind::RBrace) && !at(TokenKind::EndOfFile)) {
      if (!parseStmt(*M))
        syncToStmtEnd();
    }
    return expect(TokenKind::RBrace, "to close method body");
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  VarId useVar(MethodDecl &M, const Token &NameTok) {
    VarId Id = M.findVar(NameTok.Text);
    if (Id == InvalidVar) {
      Diags.error(NameTok.Loc,
                  "use of undeclared variable '" + NameTok.Text + "'");
      Ok = false;
    }
    return Id;
  }

  bool parseArgs(MethodDecl &M, std::vector<VarId> &Args) {
    if (!expect(TokenKind::LParen, "to open argument list"))
      return false;
    if (!at(TokenKind::RParen)) {
      do {
        if (!at(TokenKind::Identifier)) {
          error("expected argument variable");
          return false;
        }
        Token ArgTok = take();
        VarId Arg = useVar(M, ArgTok);
        if (Arg == InvalidVar)
          return false;
        Args.push_back(Arg);
      } while (accept(TokenKind::Comma));
    }
    return expect(TokenKind::RParen, "to close argument list");
  }

  bool parseStmt(MethodDecl &M) {
    SourceLocation Loc = cur().Loc;

    // var x: T;
    if (accept(TokenKind::KwVar)) {
      if (!at(TokenKind::Identifier)) {
        error("expected variable name after 'var'");
        return false;
      }
      Token NameTok = take();
      if (M.findVar(NameTok.Text) != InvalidVar) {
        Diags.error(NameTok.Loc,
                    "redeclaration of variable '" + NameTok.Text + "'");
        Ok = false;
        return false;
      }
      if (!expect(TokenKind::Colon, "after variable name"))
        return false;
      std::string TypeName;
      if (!parseQName(TypeName, "as variable type"))
        return false;
      if (!expect(TokenKind::Semicolon, "after variable declaration"))
        return false;
      M.addLocal(NameTok.Text, TypeName);
      return true;
    }

    // return [x];
    if (accept(TokenKind::KwReturn)) {
      Stmt S;
      S.Kind = StmtKind::Return;
      S.Loc = Loc;
      if (at(TokenKind::Identifier)) {
        Token RetTok = take();
        S.Lhs = useVar(M, RetTok);
        if (S.Lhs == InvalidVar)
          return false;
      }
      if (!expect(TokenKind::Semicolon, "after return"))
        return false;
      M.body().push_back(std::move(S));
      return true;
    }

    // static C.f := y;
    if (accept(TokenKind::KwStatic)) {
      std::string QName;
      if (!parseQName(QName, "after 'static'"))
        return false;
      std::string ClassName, FieldName;
      if (!splitLastComponent(QName, ClassName, FieldName)) {
        error("static field access needs a qualified 'Class.field' name");
        return false;
      }
      if (!expect(TokenKind::Assign, "in static field store"))
        return false;
      if (!at(TokenKind::Identifier)) {
        error("expected variable on right-hand side of static store");
        return false;
      }
      Token RhsTok = take();
      VarId Rhs = useVar(M, RhsTok);
      if (Rhs == InvalidVar)
        return false;
      if (!expect(TokenKind::Semicolon, "after static store"))
        return false;
      Stmt S;
      S.Kind = StmtKind::StoreStaticField;
      S.Loc = Loc;
      S.ClassName = std::move(ClassName);
      S.FieldName = std::move(FieldName);
      S.Rhs = Rhs;
      M.body().push_back(std::move(S));
      return true;
    }

    // Remaining forms start with an identifier.
    if (!at(TokenKind::Identifier)) {
      error("expected statement");
      return false;
    }
    Token FirstTok = take();

    // x.f := y;   x.m(args);
    if (accept(TokenKind::Dot)) {
      if (!at(TokenKind::Identifier)) {
        error("expected member name after '.'");
        return false;
      }
      Token MemberTok = take();
      VarId Base = useVar(M, FirstTok);
      if (Base == InvalidVar)
        return false;

      if (at(TokenKind::LParen)) {
        Stmt S;
        S.Kind = StmtKind::Invoke;
        S.Loc = Loc;
        S.Base = Base;
        S.MethodName = MemberTok.Text;
        if (!parseArgs(M, S.Args))
          return false;
        if (!expect(TokenKind::Semicolon, "after call"))
          return false;
        M.body().push_back(std::move(S));
        return true;
      }

      if (!expect(TokenKind::Assign, "in field store"))
        return false;
      if (!at(TokenKind::Identifier)) {
        error("expected variable on right-hand side of field store");
        return false;
      }
      Token RhsTok = take();
      VarId Rhs = useVar(M, RhsTok);
      if (Rhs == InvalidVar)
        return false;
      if (!expect(TokenKind::Semicolon, "after field store"))
        return false;
      Stmt S;
      S.Kind = StmtKind::StoreField;
      S.Loc = Loc;
      S.Base = Base;
      S.FieldName = MemberTok.Text;
      S.Rhs = Rhs;
      M.body().push_back(std::move(S));
      return true;
    }

    // x := rhs;
    VarId Lhs = useVar(M, FirstTok);
    if (Lhs == InvalidVar)
      return false;
    if (!expect(TokenKind::Assign, "in assignment"))
      return false;
    if (!parseRhs(M, Lhs, Loc))
      return false;
    return expect(TokenKind::Semicolon, "after assignment");
  }

  bool parseRhs(MethodDecl &M, VarId Lhs, const SourceLocation &Loc) {
    // new C [(args)]
    if (accept(TokenKind::KwNew)) {
      std::string ClassName;
      if (!parseQName(ClassName, "after 'new'"))
        return false;
      Stmt S;
      S.Kind = StmtKind::AssignNew;
      S.Loc = Loc;
      S.Lhs = Lhs;
      S.ClassName = ClassName;
      M.body().push_back(std::move(S));

      if (at(TokenKind::LParen)) {
        std::vector<VarId> Args;
        if (!parseArgs(M, Args))
          return false;
        // Non-empty constructor argument lists lower to an `init` call on
        // the fresh object; `new C()` behaves like plain `new C`.
        if (!Args.empty()) {
          Stmt Init;
          Init.Kind = StmtKind::Invoke;
          Init.Loc = Loc;
          Init.Base = Lhs;
          Init.MethodName = "init";
          Init.Args = std::move(Args);
          M.body().push_back(std::move(Init));
        }
      }
      return true;
    }

    // null
    if (accept(TokenKind::KwNull)) {
      Stmt S;
      S.Kind = StmtKind::AssignNull;
      S.Loc = Loc;
      S.Lhs = Lhs;
      M.body().push_back(std::move(S));
      return true;
    }

    // @layout/name, @id/name
    if (at(TokenKind::LayoutRef) || at(TokenKind::IdRef)) {
      Token ResTok = take();
      Stmt S;
      S.Kind = ResTok.is(TokenKind::LayoutRef) ? StmtKind::AssignLayoutId
                                               : StmtKind::AssignViewId;
      S.Loc = Loc;
      S.Lhs = Lhs;
      S.ResourceName = ResTok.Text;
      M.body().push_back(std::move(S));
      return true;
    }

    // classof C
    if (accept(TokenKind::KwClassof)) {
      std::string ClassName;
      if (!parseQName(ClassName, "after 'classof'"))
        return false;
      Stmt S;
      S.Kind = StmtKind::AssignClassConst;
      S.Loc = Loc;
      S.Lhs = Lhs;
      S.ClassName = std::move(ClassName);
      M.body().push_back(std::move(S));
      return true;
    }

    // static C.f
    if (accept(TokenKind::KwStatic)) {
      std::string QName;
      if (!parseQName(QName, "after 'static'"))
        return false;
      std::string ClassName, FieldName;
      if (!splitLastComponent(QName, ClassName, FieldName)) {
        error("static field access needs a qualified 'Class.field' name");
        return false;
      }
      Stmt S;
      S.Kind = StmtKind::LoadStaticField;
      S.Loc = Loc;
      S.Lhs = Lhs;
      S.ClassName = std::move(ClassName);
      S.FieldName = std::move(FieldName);
      M.body().push_back(std::move(S));
      return true;
    }

    // y | y.f | y.m(args)
    if (!at(TokenKind::Identifier)) {
      error("expected right-hand side expression");
      return false;
    }
    Token BaseTok = take();
    VarId Base = useVar(M, BaseTok);
    if (Base == InvalidVar)
      return false;

    if (!accept(TokenKind::Dot)) {
      Stmt S;
      S.Kind = StmtKind::AssignVar;
      S.Loc = Loc;
      S.Lhs = Lhs;
      S.Base = Base;
      M.body().push_back(std::move(S));
      return true;
    }

    if (!at(TokenKind::Identifier)) {
      error("expected member name after '.'");
      return false;
    }
    Token MemberTok = take();

    if (at(TokenKind::LParen)) {
      Stmt S;
      S.Kind = StmtKind::Invoke;
      S.Loc = Loc;
      S.Lhs = Lhs;
      S.Base = Base;
      S.MethodName = MemberTok.Text;
      if (!parseArgs(M, S.Args))
        return false;
      M.body().push_back(std::move(S));
      return true;
    }

    Stmt S;
    S.Kind = StmtKind::LoadField;
    S.Loc = Loc;
    S.Lhs = Lhs;
    S.Base = Base;
    S.FieldName = MemberTok.Text;
    M.body().push_back(std::move(S));
    return true;
  }

  std::vector<Token> Tokens;
  Program &P;
  DiagnosticEngine &Diags;
  size_t Index = 0;
  bool Ok = true;
};

} // namespace

bool gator::parser::parseAlite(std::string_view Input,
                               const std::string &FileName,
                               ir::Program &Program,
                               DiagnosticEngine &Diags) {
  Lexer Lex(Input, FileName, Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags.hasErrors())
    return false;
  return AliteParser(std::move(Tokens), Program, Diags).run();
}
