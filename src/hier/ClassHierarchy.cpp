//===- ClassHierarchy.cpp - CHA over ALite classes --------------*- C++ -*-===//

#include "hier/ClassHierarchy.h"

#include "support/Check.h"

#include <algorithm>
#include <unordered_set>

using namespace gator;
using namespace gator::hier;
using namespace gator::ir;

ClassHierarchy::ClassHierarchy(const Program &P, DiagnosticEngine *Diags)
    : P(P) {
  if (!GATOR_CHECK(P.isResolved(), Diags,
                   "ClassHierarchy built over an unresolved program; "
                   "hierarchy left empty"))
    return;

  // For each class, register it as a subtype of every supertype reachable
  // through extends/implements edges (including itself). Tables are
  // indexed by ClassDecl::globalId(); Seen doubles as a per-walk visited
  // stamp (stamped with the walk's origin) so no hash set is needed.
  uint32_t MaxId = 0;
  for (const auto &C : P.classes())
    MaxId = std::max(MaxId, C->globalId());
  Subtypes.resize(MaxId + 1);
  CallCache.resize(MaxId + 1);
  std::vector<const ClassDecl *> Seen(MaxId + 1, nullptr);
  std::vector<const ClassDecl *> Work;
  for (const auto &C : P.classes()) {
    Work.assign(1, C);
    while (!Work.empty()) {
      const ClassDecl *Cur = Work.back();
      Work.pop_back();
      const ClassDecl *&Mark = Seen[Cur->globalId()];
      if (Mark == C)
        continue;
      Mark = C;
      Subtypes[Cur->globalId()].push_back(C);
      if (Cur->superClass())
        Work.push_back(Cur->superClass());
      for (const ClassDecl *I : Cur->interfaces())
        Work.push_back(I);
    }
  }
}

const std::vector<const ClassDecl *> &
ClassHierarchy::subtypesOf(const ClassDecl *C) const {
  if (C->globalId() >= Subtypes.size())
    return Empty;
  return Subtypes[C->globalId()];
}

const MethodDecl *ClassHierarchy::dispatch(const ClassDecl *ExactType,
                                           const std::string &Name,
                                           unsigned Arity) {
  MethodDecl *M = ExactType->findMethod(Name, Arity);
  return (M && !M->isAbstract()) ? M : nullptr;
}

const std::vector<const MethodDecl *> &
ClassHierarchy::resolveVirtualCall(const ClassDecl *StaticType,
                                   const std::string &Name,
                                   unsigned Arity) const {
  if (StaticType->globalId() >= CallCache.size())
    CallCache.resize(StaticType->globalId() + 1);
  auto &PerType = CallCache[StaticType->globalId()];
  std::string Key = Name + '/' + std::to_string(Arity);
  auto It = PerType.find(Key);
  if (It != PerType.end())
    return It->second;

  std::vector<const MethodDecl *> Targets;
  std::unordered_set<const MethodDecl *> Seen;
  for (const ClassDecl *Sub : subtypesOf(StaticType)) {
    if (Sub->isInterface())
      continue;
    if (const MethodDecl *M = dispatch(Sub, Name, Arity))
      if (Seen.insert(M).second)
        Targets.push_back(M);
  }
  return PerType.emplace(std::move(Key), std::move(Targets)).first->second;
}
