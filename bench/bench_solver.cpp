//===- bench_solver.cpp - Solver-core microbenchmarks -----------*- C++ -*-===//
//
// Google-benchmark suite isolating the fixed-point solver core from the
// rest of the pipeline, to measure the difference-propagation rewrite
// (docs/DELTA_SOLVER.md) against the naive reference mode
// (AnalysisOptions::DeltaPropagation = false). Graph construction happens
// outside the timed region, so BM_SolveDelta vs. BM_SolveNaive is a pure
// solver-core comparison; BM_GraphBuildOnly gives the phase the solve
// benchmarks exclude. Delta counters are exported as benchmark counters
// so regressions in work done (not just wall time) are visible.
//
// Record results in bench/BENCH_solver.json (instructions there).
//
//===----------------------------------------------------------------------===//

#include "analysis/GraphBuilder.h"
#include "analysis/GuiAnalysis.h"
#include "analysis/Solver.h"
#include "corpus/ConnectBot.h"
#include "corpus/Corpus.h"
#include "hier/ClassHierarchy.h"

#include <benchmark/benchmark.h>

using namespace gator;
using namespace gator::analysis;
using namespace gator::corpus;

namespace {

AppSpec sweepSpec(unsigned Activities) {
  AppSpec Spec;
  Spec.Name = "SolverSweep";
  Spec.Seed = 7;
  Spec.Activities = Activities;
  Spec.FillerClasses = 50;
  Spec.MethodsPerFillerClass = 5;
  Spec.ViewsPerLayout = 12;
  Spec.IdsPerLayout = 7;
  Spec.DirectFindsPerActivity = 3;
  Spec.ListenersPerActivity = 2;
  Spec.ProgViewsPerActivity = 1;
  Spec.InflateItemsPerActivity = 1;
  return Spec;
}

/// One fresh graph + solution + op table, ready to solve. The solver
/// mutates the graph (inflation mints nodes), so every timed solve needs
/// its own copy; construction runs outside the timed region.
struct PreparedGraph {
  graph::ConstraintGraph Graph;
  std::unique_ptr<Solution> Sol;
  bool Ok = false;
};

PreparedGraph prepare(const AppBundle &Bundle, DiagnosticEngine &Diags) {
  PreparedGraph P;
  P.Sol = std::make_unique<Solution>(P.Graph, Bundle.Android);
  hier::ClassHierarchy CH(Bundle.Program);
  GraphBuilder Builder(Bundle.Program, *Bundle.Layouts, Bundle.Android, CH,
                       Diags);
  P.Ok = Builder.build(P.Graph, P.Sol->opSites());
  return P;
}

void exportCounters(benchmark::State &State, const SolverStats &Stats) {
  State.counters["propagations"] = static_cast<double>(Stats.Propagations);
  State.counters["op_firings"] = static_cast<double>(Stats.OpFirings);
  State.counters["values_pushed"] = static_cast<double>(Stats.ValuesPushed);
  State.counters["dedup_hits"] = static_cast<double>(Stats.DedupHits);
  State.counters["delta_commits"] = static_cast<double>(Stats.DeltaCommits);
  State.counters["structure_rounds"] =
      static_cast<double>(Stats.StructureRounds);
  State.counters["peak_set"] = static_cast<double>(Stats.PeakSetSize);
  State.counters["desc_hits"] = static_cast<double>(Stats.DescCacheHits);
  State.counters["desc_misses"] = static_cast<double>(Stats.DescCacheMisses);
}

/// Solve-only cost with difference propagation, swept by app size.
void BM_SolveDelta(benchmark::State &State) {
  GeneratedApp App = generateApp(sweepSpec(static_cast<unsigned>(State.range(0))));
  AnalysisOptions Options;
  SolverStats Last;
  for (auto _ : State) {
    State.PauseTiming();
    DiagnosticEngine Diags;
    PreparedGraph P = prepare(*App.Bundle, Diags);
    State.ResumeTiming();
    Solver S(P.Graph, *P.Sol, *App.Bundle->Layouts, App.Bundle->Android,
             Options, Diags);
    Last = S.solve();
    benchmark::DoNotOptimize(Last);
  }
  exportCounters(State, Last);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SolveDelta)->RangeMultiplier(2)->Range(2, 64)->Complexity();

/// Same fixed point via the naive reference mode: full-set re-propagation
/// and eager op re-enqueue (solver_delta_test proves the solutions match).
void BM_SolveNaive(benchmark::State &State) {
  GeneratedApp App = generateApp(sweepSpec(static_cast<unsigned>(State.range(0))));
  AnalysisOptions Options;
  Options.DeltaPropagation = false;
  SolverStats Last;
  for (auto _ : State) {
    State.PauseTiming();
    DiagnosticEngine Diags;
    PreparedGraph P = prepare(*App.Bundle, Diags);
    State.ResumeTiming();
    Solver S(P.Graph, *P.Sol, *App.Bundle->Layouts, App.Bundle->Android,
             Options, Diags);
    Last = S.solve();
    benchmark::DoNotOptimize(Last);
  }
  exportCounters(State, Last);
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_SolveNaive)->RangeMultiplier(2)->Range(2, 64)->Complexity();

/// High-aliasing variant: lookups routed through a shared base-class
/// helper merge views from every activity into the same variables, so
/// flowsTo sets grow far past the small-set regime. This is where
/// difference propagation matters — the naive mode re-pushes the whole
/// accumulated set on every re-propagation.
AppSpec aliasedSpec(unsigned Activities) {
  AppSpec Spec = sweepSpec(Activities);
  Spec.Name = "SolverAliased";
  Spec.SharedFindsPerActivity = 4;
  Spec.SharedHelperUsers = Activities;
  Spec.UseFlipper = true;
  return Spec;
}

void BM_SolveAliased(benchmark::State &State) {
  GeneratedApp App =
      generateApp(aliasedSpec(static_cast<unsigned>(State.range(0))));
  AnalysisOptions Options;
  Options.DeltaPropagation = State.range(1) != 0;
  SolverStats Last;
  for (auto _ : State) {
    State.PauseTiming();
    DiagnosticEngine Diags;
    PreparedGraph P = prepare(*App.Bundle, Diags);
    State.ResumeTiming();
    Solver S(P.Graph, *P.Sol, *App.Bundle->Layouts, App.Bundle->Android,
             Options, Diags);
    Last = S.solve();
    benchmark::DoNotOptimize(Last);
  }
  exportCounters(State, Last);
  State.SetLabel(State.range(1) ? "delta" : "naive");
}
BENCHMARK(BM_SolveAliased)
    ->ArgsProduct({{16, 32, 64}, {1, 0}});

/// The phase the solve benchmarks exclude: hierarchy + graph construction.
void BM_GraphBuildOnly(benchmark::State &State) {
  GeneratedApp App = generateApp(sweepSpec(static_cast<unsigned>(State.range(0))));
  for (auto _ : State) {
    DiagnosticEngine Diags;
    PreparedGraph P = prepare(*App.Bundle, Diags);
    benchmark::DoNotOptimize(P.Ok);
  }
  State.SetComplexityN(State.range(0));
}
BENCHMARK(BM_GraphBuildOnly)->RangeMultiplier(2)->Range(2, 64)->Complexity();

/// Delta vs. naive on the hand-written ConnectBot example (small, but the
/// op mix — inflate, findView, listeners, hierarchy walks — is realistic).
void BM_SolveConnectBot(benchmark::State &State) {
  auto Bundle = buildConnectBotExample();
  if (!Bundle || Bundle->Diags.hasErrors()) {
    State.SkipWithError("ConnectBot example failed to build");
    return;
  }
  AnalysisOptions Options;
  Options.DeltaPropagation = State.range(0) != 0;
  SolverStats Last;
  for (auto _ : State) {
    State.PauseTiming();
    DiagnosticEngine Diags;
    PreparedGraph P = prepare(*Bundle, Diags);
    State.ResumeTiming();
    Solver S(P.Graph, *P.Sol, *Bundle->Layouts, Bundle->Android, Options,
             Diags);
    Last = S.solve();
    benchmark::DoNotOptimize(Last);
  }
  exportCounters(State, Last);
  State.SetLabel(State.range(0) ? "delta" : "naive");
}
BENCHMARK(BM_SolveConnectBot)->Arg(1)->Arg(0);

} // namespace

BENCHMARK_MAIN();
