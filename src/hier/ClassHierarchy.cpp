//===- ClassHierarchy.cpp - CHA over ALite classes --------------*- C++ -*-===//

#include "hier/ClassHierarchy.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace gator;
using namespace gator::hier;
using namespace gator::ir;

ClassHierarchy::ClassHierarchy(const Program &P) : P(P) {
  assert(P.isResolved() && "ClassHierarchy requires a resolved program");

  // For each class, register it as a subtype of every supertype reachable
  // through extends/implements edges (including itself).
  for (const auto &C : P.classes()) {
    std::unordered_set<const ClassDecl *> Seen;
    std::vector<const ClassDecl *> Work{C.get()};
    while (!Work.empty()) {
      const ClassDecl *Cur = Work.back();
      Work.pop_back();
      if (!Seen.insert(Cur).second)
        continue;
      Subtypes[Cur].push_back(C.get());
      if (Cur->superClass())
        Work.push_back(Cur->superClass());
      for (const ClassDecl *I : Cur->interfaces())
        Work.push_back(I);
    }
  }
}

const std::vector<const ClassDecl *> &
ClassHierarchy::subtypesOf(const ClassDecl *C) const {
  auto It = Subtypes.find(C);
  return It == Subtypes.end() ? Empty : It->second;
}

const MethodDecl *ClassHierarchy::dispatch(const ClassDecl *ExactType,
                                           const std::string &Name,
                                           unsigned Arity) {
  MethodDecl *M = ExactType->findMethod(Name, Arity);
  return (M && !M->isAbstract()) ? M : nullptr;
}

std::vector<const MethodDecl *>
ClassHierarchy::resolveVirtualCall(const ClassDecl *StaticType,
                                   const std::string &Name,
                                   unsigned Arity) const {
  std::vector<const MethodDecl *> Targets;
  std::unordered_set<const MethodDecl *> Seen;
  for (const ClassDecl *Sub : subtypesOf(StaticType)) {
    if (Sub->isInterface())
      continue;
    if (const MethodDecl *M = dispatch(Sub, Name, Arity))
      if (Seen.insert(M).second)
        Targets.push_back(M);
  }
  return Targets;
}
