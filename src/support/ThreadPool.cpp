//===- ThreadPool.cpp - Parallel batch execution layer ----------*- C++ -*-===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace gator;
using namespace gator::support;

unsigned gator::support::resolveJobs(unsigned Requested) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : HW;
}

ThreadPool::ThreadPool(unsigned Workers) {
  Workers = std::max(1u, Workers);
  Executed.assign(Workers, 0);
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    // Let queued work finish first: destruction is a drain, not an abort.
    AllIdle.wait(Lock, [this] { return Queue.empty() && InFlight == 0; });
    Stopping = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (Stopping)
      return;
    Queue.push_back(std::move(Task));
  }
  WorkAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllIdle.wait(Lock, [this] { return Queue.empty() && InFlight == 0; });
}

std::vector<unsigned long> ThreadPool::tasksExecuted() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Executed;
}

std::vector<std::exception_ptr> ThreadPool::takeExceptions() {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::exception_ptr> Out;
  Out.swap(Exceptions);
  return Out;
}

void ThreadPool::workerLoop(unsigned WorkerIndex) {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WorkAvailable.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained
      Task = std::move(Queue.front());
      Queue.pop_front();
      ++InFlight;
    }
    std::exception_ptr Error;
    try {
      Task();
    } catch (...) {
      Error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      if (Error)
        Exceptions.push_back(std::move(Error));
      ++Executed[WorkerIndex];
      --InFlight;
    }
    // A waiter (wait()/destructor) may be blocked even while siblings
    // still run; notify on every completion, they re-check the predicate.
    AllIdle.notify_all();
  }
}

ParallelForStats
gator::support::parallelForGrained(unsigned Jobs, size_t N, size_t Grain,
                                   const std::function<void(size_t)> &Body) {
  ParallelForStats Stats;
  Grain = std::max<size_t>(1, Grain);
  unsigned Workers = resolveJobs(Jobs);
  if (Workers <= 1 || N <= Grain) {
    for (size_t I = 0; I < N; ++I)
      Body(I);
    Stats.WorkersUsed = 1;
    Stats.TasksPerWorker.assign(1, static_cast<unsigned long>(N));
    return Stats;
  }
  size_t Chunks = (N + Grain - 1) / Grain;
  Workers = static_cast<unsigned>(std::min<size_t>(Workers, Chunks));
  std::vector<std::exception_ptr> Errors(Chunks);
  {
    ThreadPool Pool(Workers);
    for (size_t C = 0; C < Chunks; ++C) {
      size_t Begin = C * Grain;
      size_t End = std::min(N, Begin + Grain);
      Pool.submit([&Body, &Errors, C, Begin, End] {
        try {
          for (size_t I = Begin; I < End; ++I)
            Body(I);
        } catch (...) {
          Errors[C] = std::current_exception();
        }
      });
    }
    Pool.wait();
    Stats.WorkersUsed = Pool.workerCount();
    Stats.TasksPerWorker = Pool.tasksExecuted();
  }
  for (size_t C = 0; C < Chunks; ++C)
    if (Errors[C])
      std::rethrow_exception(Errors[C]);
  return Stats;
}

void gator::support::parallelForGrained(
    ThreadPool &Pool, size_t N, size_t Grain,
    const std::function<void(size_t, size_t)> &Chunk) {
  Grain = std::max<size_t>(1, Grain);
  if (N == 0)
    return;
  if (N <= Grain) {
    Chunk(0, N); // inline: exact serial path, the pool stays untouched
    return;
  }
  size_t Chunks = (N + Grain - 1) / Grain;
  std::vector<std::exception_ptr> Errors(Chunks);
  for (size_t C = 0; C < Chunks; ++C) {
    size_t Begin = C * Grain;
    size_t End = std::min(N, Begin + Grain);
    Pool.submit([&Chunk, &Errors, C, Begin, End] {
      try {
        Chunk(Begin, End);
      } catch (...) {
        Errors[C] = std::current_exception();
      }
    });
  }
  Pool.wait();
  for (size_t C = 0; C < Chunks; ++C)
    if (Errors[C])
      std::rethrow_exception(Errors[C]);
}

ParallelForStats
gator::support::parallelFor(unsigned Jobs, size_t N,
                            const std::function<void(size_t)> &Body) {
  ParallelForStats Stats;
  unsigned Workers = resolveJobs(Jobs);
  if (Workers <= 1 || N <= 1) {
    // Exact serial fallback: inline, in index order, no pool. An exception
    // aborts the remaining indices, matching a plain for loop.
    for (size_t I = 0; I < N; ++I)
      Body(I);
    Stats.WorkersUsed = 1;
    Stats.TasksPerWorker.assign(1, static_cast<unsigned long>(N));
    return Stats;
  }
  Workers = static_cast<unsigned>(
      std::min<size_t>(Workers, N)); // no idle threads for small batches
  std::vector<std::exception_ptr> Errors(N);
  {
    ThreadPool Pool(Workers);
    for (size_t I = 0; I < N; ++I)
      Pool.submit([&Body, &Errors, I] {
        try {
          Body(I);
        } catch (...) {
          Errors[I] = std::current_exception();
        }
      });
    Pool.wait();
    Stats.WorkersUsed = Pool.workerCount();
    Stats.TasksPerWorker = Pool.tasksExecuted();
  }
  for (size_t I = 0; I < N; ++I)
    if (Errors[I])
      std::rethrow_exception(Errors[I]);
  return Stats;
}
