//===- WideEvent.cpp - Per-app run-ledger records ---------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "support/WideEvent.h"

#include "support/Json.h"
#include "support/JsonParse.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace gator {
namespace support {

namespace {

/// Fixed-precision double token, matching the metrics exporters so the
/// same value renders identically everywhere.
std::string formatSeconds(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

} // namespace

void WideEvent::writeJsonl(std::ostream &OS, bool IncludeVolatile) const {
  JsonWriter W(OS);
  W.beginObject();
  W.field("index", Index);
  W.field("app", App);
  W.field("content_key", ContentKey);
  W.field("exit_code", ExitCode);
  W.field("fidelity", Fidelity);
  W.field("cache", Cache);
  W.field("generation_failed", GenerationFailed);
  W.field("classes", Classes);
  W.field("methods", Methods);
  W.field("layout_ids", LayoutIds);
  W.field("view_ids", ViewIds);
  W.field("infl_views", InflViews);
  W.field("alloc_views", AllocViews);
  W.field("listeners", Listeners);
  W.field("graph_nodes", GraphNodes);
  W.field("flow_edges", FlowEdges);
  W.field("parent_child_edges", ParentChildEdges);
  W.field("propagations", Propagations);
  W.field("op_firings", OpFirings);
  W.field("values_pushed", ValuesPushed);
  W.field("dedup_hits", DedupHits);
  W.field("peak_set_size", PeakSetSize);
  W.field("unresolved_ops", UnresolvedOps);
  W.field("work_charged", WorkCharged);
  W.field("unknown_views", UnknownViews);
  W.field("unknown_ids", UnknownIds);
  W.field("unknown_total", unknownTotal());
  W.key("unknown_by_reason");
  W.beginObject();
  for (const auto &R : UnknownByReason)
    W.field(R.first, R.second);
  W.endObject();
  W.field("arena_bytes", ArenaBytes);
  if (IncludeVolatile) {
    W.key("build_seconds");
    W.rawNumber(formatSeconds(BuildSeconds));
    W.key("solve_seconds");
    W.rawNumber(formatSeconds(SolveSeconds));
    W.field("peak_rss_bytes", PeakRssBytes);
    W.field("scc_count", SccCount);
    W.field("scc_strata", SccStrata);
    W.field("barrier_waves", BarrierWaves);
    W.field("parallel_rounds", ParallelRounds);
  }
  W.endObject();
}

bool WideEvent::fromJson(const JsonValue &V, WideEvent &Out,
                         std::string &Error) {
  if (!V.isObject()) {
    Error = "ledger record is not an object";
    return false;
  }
  Out = WideEvent();
  Out.Index = V.u64Or("index", 0);
  Out.App = V.stringOr("app", "");
  Out.ContentKey = V.stringOr("content_key", "");
  Out.ExitCode = static_cast<int>(V.numberOr("exit_code", 0));
  Out.Fidelity = V.stringOr("fidelity", "complete");
  Out.Cache = V.stringOr("cache", "off");
  Out.GenerationFailed = V.boolOr("generation_failed", false);
  Out.Classes = V.u64Or("classes", 0);
  Out.Methods = V.u64Or("methods", 0);
  Out.LayoutIds = V.u64Or("layout_ids", 0);
  Out.ViewIds = V.u64Or("view_ids", 0);
  Out.InflViews = V.u64Or("infl_views", 0);
  Out.AllocViews = V.u64Or("alloc_views", 0);
  Out.Listeners = V.u64Or("listeners", 0);
  Out.GraphNodes = V.u64Or("graph_nodes", 0);
  Out.FlowEdges = V.u64Or("flow_edges", 0);
  Out.ParentChildEdges = V.u64Or("parent_child_edges", 0);
  Out.Propagations = V.u64Or("propagations", 0);
  Out.OpFirings = V.u64Or("op_firings", 0);
  Out.ValuesPushed = V.u64Or("values_pushed", 0);
  Out.DedupHits = V.u64Or("dedup_hits", 0);
  Out.PeakSetSize = V.u64Or("peak_set_size", 0);
  Out.UnresolvedOps = V.u64Or("unresolved_ops", 0);
  Out.WorkCharged = V.u64Or("work_charged", 0);
  Out.UnknownViews = V.u64Or("unknown_views", 0);
  Out.UnknownIds = V.u64Or("unknown_ids", 0);
  if (const JsonValue *Reasons = V.find("unknown_by_reason")) {
    if (!Reasons->isObject()) {
      Error = "unknown_by_reason is not an object";
      return false;
    }
    for (const auto &M : Reasons->members())
      if (M.second.isNumber())
        Out.UnknownByReason.emplace_back(M.first, M.second.asU64());
  }
  Out.ArenaBytes = V.u64Or("arena_bytes", 0);
  Out.BuildSeconds = V.numberOr("build_seconds", 0.0);
  Out.SolveSeconds = V.numberOr("solve_seconds", 0.0);
  Out.PeakRssBytes = V.u64Or("peak_rss_bytes", 0);
  Out.SccCount = V.u64Or("scc_count", 0);
  Out.SccStrata = V.u64Or("scc_strata", 0);
  Out.BarrierWaves = V.u64Or("barrier_waves", 0);
  Out.ParallelRounds = V.u64Or("parallel_rounds", 0);
  return true;
}

void LedgerHeader::writeJsonl(std::ostream &OS) const {
  JsonWriter W(OS);
  W.beginObject();
  W.field("ledger_format", Format);
  W.field("tool", Tool);
  W.field("options_digest", OptionsDigest);
  W.field("no_times", NoTimes);
  W.field("apps", Apps);
  W.endObject();
}

bool LedgerHeader::fromJson(const JsonValue &V, LedgerHeader &Out,
                            std::string &Error) {
  if (!V.isObject() || !V.has("ledger_format")) {
    Error = "first ledger line is not a header object";
    return false;
  }
  Out = LedgerHeader();
  Out.Format = static_cast<uint32_t>(V.u64Or("ledger_format", 0));
  if (Out.Format != FormatVersion) {
    Error = "unsupported ledger_format " + std::to_string(Out.Format) +
            " (this build reads " + std::to_string(FormatVersion) + ")";
    return false;
  }
  Out.Tool = V.stringOr("tool", "");
  Out.OptionsDigest = V.stringOr("options_digest", "");
  Out.NoTimes = V.boolOr("no_times", false);
  Out.Apps = V.u64Or("apps", 0);
  return true;
}

void writeLedger(std::ostream &OS, const LedgerHeader &Header,
                 const std::vector<WideEvent> &Events) {
  LedgerHeader H = Header;
  H.Apps = Events.size();
  H.writeJsonl(OS);
  OS << '\n';
  for (const WideEvent &E : Events) {
    E.writeJsonl(OS, !H.NoTimes);
    OS << '\n';
  }
}

bool readLedger(std::string_view Text, Ledger &Out, std::string &Error) {
  Out = Ledger();
  size_t LineNo = 0;
  size_t Pos = 0;
  bool SawHeader = false;
  while (Pos <= Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    std::string_view Line = Text.substr(
        Pos, Nl == std::string_view::npos ? std::string_view::npos
                                          : Nl - Pos);
    Pos = Nl == std::string_view::npos ? Text.size() + 1 : Nl + 1;
    ++LineNo;
    // Skip blank lines (including the terminating newline's empty tail).
    size_t NonWs = Line.find_first_not_of(" \t\r");
    if (NonWs == std::string_view::npos)
      continue;
    JsonValue V;
    std::string ParseError;
    if (!JsonValue::parse(Line, V, ParseError)) {
      Error = "line " + std::to_string(LineNo) + ": " + ParseError;
      return false;
    }
    if (!SawHeader) {
      if (!LedgerHeader::fromJson(V, Out.Header, Error)) {
        Error = "line " + std::to_string(LineNo) + ": " + Error;
        return false;
      }
      SawHeader = true;
      continue;
    }
    WideEvent E;
    if (!WideEvent::fromJson(V, E, Error)) {
      Error = "line " + std::to_string(LineNo) + ": " + Error;
      return false;
    }
    Out.Events.push_back(std::move(E));
  }
  if (!SawHeader) {
    Error = "empty ledger: no header line";
    return false;
  }
  return true;
}

bool readLedgerFile(const std::string &Path, Ledger &Out,
                    std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open " + Path;
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return readLedger(Buf.str(), Out, Error);
}

const std::vector<WideEventField> &wideEventNumericFields() {
  static const std::vector<WideEventField> Fields = {
      {"classes", [](const WideEvent &E) { return double(E.Classes); },
       false},
      {"methods", [](const WideEvent &E) { return double(E.Methods); },
       false},
      {"layout_ids", [](const WideEvent &E) { return double(E.LayoutIds); },
       false},
      {"view_ids", [](const WideEvent &E) { return double(E.ViewIds); },
       false},
      {"infl_views", [](const WideEvent &E) { return double(E.InflViews); },
       false},
      {"alloc_views",
       [](const WideEvent &E) { return double(E.AllocViews); }, false},
      {"listeners", [](const WideEvent &E) { return double(E.Listeners); },
       false},
      {"graph_nodes",
       [](const WideEvent &E) { return double(E.GraphNodes); }, false},
      {"flow_edges", [](const WideEvent &E) { return double(E.FlowEdges); },
       false},
      {"parent_child_edges",
       [](const WideEvent &E) { return double(E.ParentChildEdges); },
       false},
      {"propagations",
       [](const WideEvent &E) { return double(E.Propagations); }, false},
      {"op_firings", [](const WideEvent &E) { return double(E.OpFirings); },
       false},
      {"values_pushed",
       [](const WideEvent &E) { return double(E.ValuesPushed); }, false},
      {"dedup_hits", [](const WideEvent &E) { return double(E.DedupHits); },
       false},
      {"peak_set_size",
       [](const WideEvent &E) { return double(E.PeakSetSize); }, false},
      {"unresolved_ops",
       [](const WideEvent &E) { return double(E.UnresolvedOps); }, false},
      {"work_charged",
       [](const WideEvent &E) { return double(E.WorkCharged); }, false},
      {"unknown_total",
       [](const WideEvent &E) { return double(E.unknownTotal()); }, false},
      {"arena_bytes",
       [](const WideEvent &E) { return double(E.ArenaBytes); }, false},
      {"build_seconds",
       [](const WideEvent &E) { return E.BuildSeconds; }, true},
      {"solve_seconds",
       [](const WideEvent &E) { return E.SolveSeconds; }, true},
      {"peak_rss_bytes",
       [](const WideEvent &E) { return double(E.PeakRssBytes); }, true},
      {"scc_count", [](const WideEvent &E) { return double(E.SccCount); },
       true},
      {"scc_strata", [](const WideEvent &E) { return double(E.SccStrata); },
       true},
      {"barrier_waves",
       [](const WideEvent &E) { return double(E.BarrierWaves); }, true},
      {"parallel_rounds",
       [](const WideEvent &E) { return double(E.ParallelRounds); }, true},
  };
  return Fields;
}

} // namespace support
} // namespace gator
