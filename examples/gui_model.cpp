//===- gui_model.cpp - Section 6 client analyses ----------------*- C++ -*-===//
//
// Demonstrates the downstream clients the paper motivates in Section 6,
// on a multi-activity app from the synthetic corpus:
//  - (activity, view, event, handler) tuples — the model input that the
//    concolic test-generation work cited by the paper built by hand;
//  - per-activity static view hierarchies (reverse-engineering client);
//  - the activity transition graph (SCanDroid/A3E-style), printed as DOT.
//
//===----------------------------------------------------------------------===//

#include "analysis/GuiAnalysis.h"
#include "corpus/Corpus.h"
#include "guimodel/GuiModel.h"

#include <iostream>

using namespace gator;
using namespace gator::analysis;

int main() {
  // A small 3-activity app with listeners and transitions.
  corpus::AppSpec Spec;
  Spec.Name = "Demo";
  Spec.Seed = 42;
  Spec.Activities = 3;
  Spec.FillerClasses = 0;
  Spec.ViewsPerLayout = 8;
  Spec.IdsPerLayout = 5;
  Spec.DirectFindsPerActivity = 2;
  Spec.ListenersPerActivity = 2;
  Spec.ProgViewsPerActivity = 1;
  Spec.EmitTransitions = true;

  corpus::GeneratedApp App = corpus::generateApp(Spec);
  if (App.Bundle->Diags.hasErrors()) {
    App.Bundle->Diags.print(std::cerr);
    return 1;
  }

  auto Result =
      GuiAnalysis::run(App.Bundle->Program, *App.Bundle->Layouts,
                       App.Bundle->Android, AnalysisOptions(),
                       App.Bundle->Diags);
  if (!Result) {
    App.Bundle->Diags.print(std::cerr);
    return 1;
  }

  std::cout << "=== (activity, view, event, handler) tuples ===\n";
  auto Tuples = guimodel::extractHandlerTuples(*Result);
  guimodel::printHandlerTuples(std::cout, *Result, Tuples);

  std::cout << "\n=== static view hierarchies ===\n";
  guimodel::printViewHierarchies(std::cout, *Result);

  std::cout << "\n=== activity transition graph (DOT) ===\n";
  auto Transitions = guimodel::buildActivityTransitionGraph(*Result);
  guimodel::printTransitionsDot(std::cout, Transitions);

  std::cout << "\n=== event sequences from DemoActivity0 (length <= 4) ===\n";
  const ir::ClassDecl *Start =
      App.Bundle->Program.findClass("DemoActivity0");
  guimodel::printEventSequences(
      std::cout, *Result,
      guimodel::enumerateEventSequences(*Result, Start, 4, 16));

  std::cout << "\n=== EditText view-reach report ===\n";
  guimodel::printViewReach(std::cout, *Result,
                           guimodel::computeViewReach(*Result));
  return 0;
}
