//===- alite_fmt.cpp - ALite source formatter -------------------*- C++ -*-===//
//
// Normalizes ALite source: parse, verify, and re-print in the canonical
// style (the printer's output is a fixed point of parse→print). Reads
// one file (or stdin with "-") and writes the formatted program to
// stdout; diagnostics go to stderr.
//
//   alite_fmt file.alite            # print formatted source
//   alite_fmt - < file.alite        # same, from stdin
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "parser/Printer.h"

#include <fstream>
#include <iostream>
#include <sstream>

using namespace gator;

int main(int argc, char **argv) {
  if (argc != 2) {
    std::cerr << "usage: alite_fmt <file.alite | ->\n";
    return 2;
  }

  std::string Source;
  std::string FileName = argv[1];
  if (FileName == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
    FileName = "<stdin>";
  } else {
    std::ifstream In(FileName);
    if (!In) {
      std::cerr << "error: cannot read " << FileName << "\n";
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  ir::Program P;
  DiagnosticEngine Diags;
  android::AndroidModel AM;
  AM.install(P); // so platform references verify cleanly
  bool Ok = parser::parseAlite(Source, FileName, P, Diags);
  if (Ok)
    Ok = P.resolve(Diags) && ir::verifyProgram(P, Diags);
  Diags.print(std::cerr);
  if (!Ok || Diags.hasErrors())
    return 1;

  parser::printProgram(P, std::cout);
  return 0;
}
