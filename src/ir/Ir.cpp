//===- Ir.cpp - ALite IR implementation -----------------------*- C++ -*-===//

#include "ir/Ir.h"

#include <algorithm>
#include <sstream>

using namespace gator;
using namespace gator::ir;

bool gator::ir::isPrimitiveTypeName(const std::string &Name) {
  return Name == IntTypeName || Name == VoidTypeName;
}

//===----------------------------------------------------------------------===//
// FieldDecl
//===----------------------------------------------------------------------===//

std::string FieldDecl::qualifiedName() const {
  return Owner->name() + "." + Name;
}

//===----------------------------------------------------------------------===//
// MethodDecl
//===----------------------------------------------------------------------===//

std::string MethodDecl::qualifiedName() const {
  std::ostringstream OS;
  OS << Owner->name() << '.' << Name << '/' << NumParams;
  return OS.str();
}

VarId MethodDecl::addParam(std::string Name, std::string TypeName) {
  assert(Vars.size() == (IsStatic ? 0u : 1u) + NumParams &&
         "parameters must be added before locals");
  Variable Param;
  Param.Name = std::move(Name);
  Param.TypeName = std::move(TypeName);
  Param.IsParam = true;
  Vars.push_back(std::move(Param));
  ++NumParams;
  return static_cast<VarId>(Vars.size() - 1);
}

VarId MethodDecl::addLocal(std::string Name, std::string TypeName) {
  Variable Local;
  Local.Name = std::move(Name);
  Local.TypeName = std::move(TypeName);
  Vars.push_back(std::move(Local));
  return static_cast<VarId>(Vars.size() - 1);
}

VarId MethodDecl::findVar(const std::string &Name) const {
  for (size_t I = 0; I < Vars.size(); ++I)
    if (Vars[I].Name == Name)
      return static_cast<VarId>(I);
  return InvalidVar;
}

//===----------------------------------------------------------------------===//
// ClassDecl
//===----------------------------------------------------------------------===//

FieldDecl *ClassDecl::addField(std::string Name, std::string TypeName,
                               bool IsStatic) {
  Fields.push_back(std::make_unique<FieldDecl>(
      std::move(Name), std::move(TypeName), IsStatic, this,
      OwnerProgram->NextFieldId++));
  return Fields.back().get();
}

MethodDecl *ClassDecl::addMethod(std::string Name, std::string ReturnTypeName,
                                 bool IsStatic) {
  ++OwnerProgram->StructureEpoch;
  Methods.push_back(std::make_unique<MethodDecl>(
      std::move(Name), std::move(ReturnTypeName), IsStatic, this,
      OwnerProgram->NextMethodId++));
  MethodDecl *M = Methods.back().get();
  if (!IsStatic)
    M->Vars[0].TypeName = this->Name; // `this` has the declaring class type.
  if (IsInterface)
    M->setAbstract(true);
  return M;
}

FieldDecl *ClassDecl::findOwnField(const std::string &Name) const {
  for (const auto &F : Fields)
    if (F->name() == Name)
      return F.get();
  return nullptr;
}

FieldDecl *ClassDecl::findField(const std::string &Name) const {
  for (const ClassDecl *C = this; C; C = C->Super)
    if (FieldDecl *F = C->findOwnField(Name))
      return F;
  return nullptr;
}

MethodDecl *ClassDecl::findOwnMethod(const std::string &Name,
                                     unsigned Arity) const {
  for (const auto &M : Methods)
    if (M->name() == Name && M->paramCount() == Arity)
      return M.get();
  return nullptr;
}

MethodDecl *ClassDecl::findMethod(const std::string &Name,
                                  unsigned Arity) const {
  if (MethodLookupEpoch != OwnerProgram->structureEpoch()) {
    MethodLookupCache.clear();
    MethodLookupEpoch = OwnerProgram->structureEpoch();
  }
  std::string Key;
  Key.reserve(Name.size() + 4);
  Key = Name;
  Key.push_back('/');
  Key += std::to_string(Arity);
  auto [It, Inserted] = MethodLookupCache.try_emplace(std::move(Key), nullptr);
  if (Inserted)
    It->second = findMethodUncached(Name, Arity);
  return It->second;
}

MethodDecl *ClassDecl::findMethodUncached(const std::string &Name,
                                          unsigned Arity) const {
  for (const ClassDecl *C = this; C; C = C->Super)
    if (MethodDecl *M = C->findOwnMethod(Name, Arity))
      return M;
  // Interface default/abstract declarations: search implemented interfaces
  // transitively so dispatch through an interface-typed receiver works.
  for (const ClassDecl *I : Interfaces)
    if (MethodDecl *M = I->findMethod(Name, Arity))
      return M;
  if (Super)
    for (const ClassDecl *I : Super->Interfaces)
      if (MethodDecl *M = I->findMethod(Name, Arity))
        return M;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

ClassDecl *Program::addClass(std::string Name, bool IsInterface,
                             bool IsPlatform, DiagnosticEngine *Diags) {
  if (ByName.count(Name)) {
    if (Diags)
      Diags->error("duplicate class name '" + Name + "'");
    return nullptr;
  }
  Classes.push_back(std::make_unique<ClassDecl>(Name, IsInterface, IsPlatform,
                                                this, NextClassId++));
  ClassDecl *C = Classes.back().get();
  ByName.emplace(C->name(), C);
  Resolved = false;
  return C;
}

ClassDecl *Program::findClass(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? nullptr : It->second;
}

bool Program::resolve(DiagnosticEngine &Diags) {
  ++StructureEpoch; // Super/interface links are about to change.
  bool Ok = true;
  for (const auto &C : Classes) {
    C->Super = nullptr;
    C->Interfaces.clear();

    if (!C->SuperName.empty()) {
      ClassDecl *Super = findClass(C->SuperName);
      if (!Super) {
        Diags.error("class '" + C->name() + "' extends unknown class '" +
                    C->SuperName + "'");
        Ok = false;
      } else {
        C->Super = Super;
      }
    } else if (!C->isInterface() && C->name() != ObjectClassName) {
      // Implicit java.lang.Object superclass when present in the program.
      C->Super = findClass(ObjectClassName);
    }

    for (const std::string &IName : C->InterfaceNames) {
      ClassDecl *Iface = findClass(IName);
      if (!Iface) {
        Diags.error("class '" + C->name() + "' implements unknown interface '" +
                    IName + "'");
        Ok = false;
        continue;
      }
      if (!Iface->isInterface()) {
        Diags.error("class '" + C->name() + "' implements non-interface '" +
                    IName + "'");
        Ok = false;
        continue;
      }
      C->Interfaces.push_back(Iface);
    }
  }

  // Reject inheritance cycles: walk each chain with a step bound.
  for (const auto &C : Classes) {
    const ClassDecl *Walk = C.get();
    size_t Steps = 0;
    while (Walk && Steps <= Classes.size()) {
      Walk = Walk->Super;
      ++Steps;
    }
    if (Walk) {
      Diags.error("inheritance cycle involving class '" + C->name() + "'");
      Ok = false;
      break;
    }
  }

  Resolved = Ok;
  return Ok;
}

bool Program::isSubtypeOf(const ClassDecl *Klass,
                          const ClassDecl *Ancestor) const {
  assert(Resolved && "Program::resolve() must run first");
  if (!Klass || !Ancestor)
    return false;
  for (const ClassDecl *C = Klass; C; C = C->superClass()) {
    if (C == Ancestor)
      return true;
    for (const ClassDecl *I : C->interfaces())
      if (isSubtypeOf(I, Ancestor))
        return true;
  }
  return false;
}

unsigned Program::appClassCount() const {
  unsigned Count = 0;
  for (const auto &C : Classes)
    if (!C->isPlatform())
      ++Count;
  return Count;
}

unsigned Program::appMethodCount() const {
  unsigned Count = 0;
  for (const auto &C : Classes) {
    if (C->isPlatform())
      continue;
    for (const auto &M : C->methods())
      if (!M->isAbstract())
        ++Count;
  }
  return Count;
}
