//===- Baseline.cpp - Plain reference analysis ------------------*- C++ -*-===//

#include "baseline/Baseline.h"

#include <cassert>
#include <deque>

using namespace gator;
using namespace gator::baseline;
using namespace gator::ir;
using namespace gator::android;

namespace {

/// A tiny standalone field-based Andersen solver. Nodes are (method, var)
/// pairs and fields; values are allocation (or summary) sites.
class BaselineSolver {
public:
  BaselineSolver(const Program &P, const AndroidModel &AM,
                 const BaselineOptions &Options)
      : P(P), AM(AM), Options(Options), CH(P) {}

  BaselineResult run();

private:
  using NodeIdx = uint32_t;
  using ValueIdx = uint32_t;

  struct Value {
    const ClassDecl *Klass;
    bool IsSummary;
  };

  NodeIdx varNode(const MethodDecl *M, VarId V) {
    uint64_t Key = (reinterpret_cast<uint64_t>(M) << 16) ^
                   static_cast<uint64_t>(V + 1);
    auto It = VarIdx.find(Key);
    if (It != VarIdx.end())
      return It->second;
    NodeIdx Id = newNode();
    VarIdx.emplace(Key, Id);
    return Id;
  }

  NodeIdx fieldNode(const FieldDecl *F) {
    auto It = FieldIdx.find(F);
    if (It != FieldIdx.end())
      return It->second;
    NodeIdx Id = newNode();
    FieldIdx.emplace(F, Id);
    return Id;
  }

  NodeIdx newNode() {
    Succ.emplace_back();
    Sets.emplace_back();
    InWork.push_back(false);
    return static_cast<NodeIdx>(Succ.size() - 1);
  }

  ValueIdx newValue(const ClassDecl *Klass, bool IsSummary) {
    Values.push_back(Value{Klass, IsSummary});
    return static_cast<ValueIdx>(Values.size() - 1);
  }

  void addEdge(NodeIdx From, NodeIdx To) {
    if (Edges.insert((static_cast<uint64_t>(From) << 32) | To).second)
      Succ[From].push_back(To);
  }

  void addValue(NodeIdx N, ValueIdx V) {
    if (!Sets[N].insert(V).second)
      return;
    if (!InWork[N]) {
      InWork[N] = true;
      Work.push_back(N);
    }
  }

  const ClassDecl *declaredClass(const MethodDecl &M, VarId V) const {
    const std::string &T = M.var(V).TypeName;
    if (T.empty() || isPrimitiveTypeName(T))
      return nullptr;
    return P.findClass(T);
  }

  void buildMethod(const MethodDecl &M);
  void buildInvoke(const MethodDecl &M, const Stmt &S);

  void propagateAll() {
    while (!Work.empty()) {
      NodeIdx N = Work.front();
      Work.pop_front();
      InWork[N] = false;
      std::vector<ValueIdx> Vals(Sets[N].begin(), Sets[N].end());
      for (NodeIdx To : Succ[N])
        for (ValueIdx V : Vals)
          addValue(To, V);
    }
  }

  const Program &P;
  const AndroidModel &AM;
  const BaselineOptions &Options;
  hier::ClassHierarchy CH;

  std::unordered_map<uint64_t, NodeIdx> VarIdx;
  std::unordered_map<const FieldDecl *, NodeIdx> FieldIdx;
  std::vector<std::vector<NodeIdx>> Succ;
  std::unordered_set<uint64_t> Edges;
  std::vector<std::unordered_set<ValueIdx>> Sets;
  std::vector<Value> Values;
  std::deque<NodeIdx> Work;
  std::vector<bool> InWork;

  // Measurement bookkeeping.
  struct FindViewSite {
    NodeIdx Out;
    bool HasOut;
  };
  std::vector<FindViewSite> FindViews;
  struct ListenerSite {
    NodeIdx Recv, Arg;
  };
  std::vector<ListenerSite> ListenerSites;
};

void BaselineSolver::buildInvoke(const MethodDecl &M, const Stmt &S) {
  const ClassDecl *Recv = declaredClass(M, S.Base);
  if (!Recv)
    return;
  unsigned Arity = static_cast<unsigned>(S.Args.size());
  const MethodDecl *Resolved = Recv->findMethod(S.MethodName, Arity);
  bool PlatformTarget =
      Resolved && Resolved->isAbstract() && Resolved->owner()->isPlatform();

  // App-method call edges via CHA — the part existing analyses do handle.
  for (const MethodDecl *T : CH.resolveVirtualCall(Recv, S.MethodName,
                                                   Arity)) {
    if (T->owner()->isPlatform())
      continue;
    if (!T->isStatic())
      addEdge(varNode(&M, S.Base), varNode(T, T->thisVar()));
    unsigned N = std::min<unsigned>(T->paramCount(), Arity);
    for (unsigned I = 0; I < N; ++I)
      addEdge(varNode(&M, S.Args[I]), varNode(T, T->paramVar(I)));
    if (S.Lhs != InvalidVar)
      for (const Stmt &Ret : T->body())
        if (Ret.Kind == StmtKind::Return && Ret.Lhs != InvalidVar)
          addEdge(varNode(T, Ret.Lhs), varNode(&M, S.Lhs));
  }

  if (!PlatformTarget && Resolved)
    return;

  // Platform call: record measurement sites, apply the chosen treatment.
  std::optional<OpSpec> Spec = AM.classifyInvoke(M, S);
  if (Spec) {
    switch (Spec->Kind) {
    case OpKind::FindView1:
    case OpKind::FindView2:
    case OpKind::FindView3:
      FindViews.push_back(
          {S.Lhs != InvalidVar ? varNode(&M, S.Lhs) : 0, S.Lhs != InvalidVar});
      break;
    case OpKind::SetListener:
      ListenerSites.push_back(
          {varNode(&M, S.Base), varNode(&M, S.Args[0])});
      break;
    default:
      break;
    }
  }

  // Reflective construction: `c.newInstance()` may return any object, so
  // the baseline models it as a summary value of the result variable's
  // declared type (java.lang.Object when untyped) — the coarse analogue
  // of the main pipeline's tagged UnknownView (docs/ROBUSTNESS.md).
  if (S.MethodName == "newInstance" && S.Lhs != InvalidVar) {
    const ClassDecl *K = declaredClass(M, S.Lhs);
    if (!K)
      K = P.findClass(ObjectClassName);
    if (K)
      addValue(varNode(&M, S.Lhs), newValue(K, /*IsSummary=*/true));
  }

  if (Options.Treatment == PlatformCallTreatment::SummaryObjects &&
      S.Lhs != InvalidVar && Resolved &&
      !isPrimitiveTypeName(Resolved->returnTypeName()) &&
      Resolved->returnTypeName() != VoidTypeName) {
    const ClassDecl *RetClass = P.findClass(Resolved->returnTypeName());
    if (RetClass)
      addValue(varNode(&M, S.Lhs), newValue(RetClass, /*IsSummary=*/true));
  }
}

void BaselineSolver::buildMethod(const MethodDecl &M) {
  for (const Stmt &S : M.body()) {
    switch (S.Kind) {
    case StmtKind::AssignVar:
      addEdge(varNode(&M, S.Base), varNode(&M, S.Lhs));
      break;
    case StmtKind::AssignNew: {
      const ClassDecl *C = P.findClass(S.ClassName);
      if (C)
        addValue(varNode(&M, S.Lhs), newValue(C, /*IsSummary=*/false));
      break;
    }
    case StmtKind::LoadField:
    case StmtKind::StoreField: {
      const ClassDecl *C = declaredClass(M, S.Base);
      const FieldDecl *F = C ? C->findField(S.FieldName) : nullptr;
      if (!F)
        break;
      if (S.Kind == StmtKind::LoadField)
        addEdge(fieldNode(F), varNode(&M, S.Lhs));
      else
        addEdge(varNode(&M, S.Rhs), fieldNode(F));
      break;
    }
    case StmtKind::LoadStaticField:
    case StmtKind::StoreStaticField: {
      const ClassDecl *C = P.findClass(S.ClassName);
      const FieldDecl *F = C ? C->findField(S.FieldName) : nullptr;
      if (!F)
        break;
      if (S.Kind == StmtKind::LoadStaticField)
        addEdge(fieldNode(F), varNode(&M, S.Lhs));
      else
        addEdge(varNode(&M, S.Rhs), fieldNode(F));
      break;
    }
    case StmtKind::Invoke:
      buildInvoke(M, S);
      break;
    default:
      break; // ids, class constants, null, return: nothing to model
    }
  }
}

BaselineResult BaselineSolver::run() {
  for (const auto &C : P.classes()) {
    if (C->isPlatform())
      continue;
    for (const auto &M : C->methods())
      if (!M->isAbstract())
        buildMethod(*M);
  }

  if (Options.SeedAllMethods) {
    // Give every instance method a summary receiver of its own class, a
    // crude stand-in for unknown framework entry points.
    for (const auto &C : P.classes()) {
      if (C->isPlatform() || C->isInterface())
        continue;
      for (const auto &M : C->methods())
        if (!M->isAbstract() && !M->isStatic())
          addValue(varNode(M, M->thisVar()),
                   newValue(C, /*IsSummary=*/true));
    }
  }

  propagateAll();

  BaselineResult R;
  for (const FindViewSite &Site : FindViews) {
    ++R.FindViewSites;
    if (Site.HasOut && !Sets[Site.Out].empty())
      ++R.FindViewSitesWithValues;
  }
  // By construction the baseline knows nothing about layout-declared
  // views, so resolution against them is identically zero.
  R.FindViewSitesResolvedToLayoutViews = 0;

  for (const ListenerSite &Site : ListenerSites) {
    ++R.SetListenerSites;
    if (!Sets[Site.Recv].empty() && !Sets[Site.Arg].empty())
      ++R.SetListenerSitesWithOperands;
  }

  // Handler reachability: listener-interface implementations whose `this`
  // received a value.
  for (const auto &C : P.classes()) {
    if (C->isPlatform())
      continue;
    for (const auto *Spec : AM.listenerSpecsOf(C)) {
      for (const HandlerSig &Sig : Spec->Handlers) {
        const MethodDecl *H =
            hier::ClassHierarchy::dispatch(C, Sig.MethodName, Sig.Arity);
        if (!H || H->owner() != C)
          continue;
        ++R.HandlersTotal;
        if (!Sets[varNode(H, H->thisVar())].empty())
          ++R.HandlersReached;
      }
    }
  }

  for (const auto &Set : Sets)
    R.TotalFacts += Set.size();
  return R;
}

} // namespace

BaselineResult gator::baseline::runBaseline(const Program &P,
                                            const AndroidModel &AM,
                                            const BaselineOptions &Options,
                                            DiagnosticEngine &Diags) {
  (void)Diags;
  return BaselineSolver(P, AM, Options).run();
}
