//===- options_matrix_test.cpp - Soundness across option combos -*- C++ -*-===//
//
// Sweeps the full analysis-option matrix on the ConnectBot example and
// checks that the *soundness* claims of Section 2 hold under every
// combination: ablations may enlarge solution sets, but the true run-time
// facts can never disappear, and every configuration must reach a closed
// fixed point.
//
//===----------------------------------------------------------------------===//

#include "analysis/SolutionChecker.h"
#include "corpus/ConnectBot.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::test;

namespace {

/// One bit per option; 5 options = 32 combinations.
struct OptionCombo {
  bool TrackViewIds;
  bool TrackHierarchy;
  bool FindView3ChildOnly;
  bool ModelListenerCallbacks;
  bool DeclaredTypeFilter;
};

OptionCombo comboFromIndex(unsigned Index) {
  return OptionCombo{(Index & 1) != 0,  (Index & 2) != 0, (Index & 4) != 0,
                     (Index & 8) != 0,  (Index & 16) != 0};
}

AnalysisOptions toOptions(const OptionCombo &Combo) {
  AnalysisOptions Options;
  Options.TrackViewIds = Combo.TrackViewIds;
  Options.TrackHierarchy = Combo.TrackHierarchy;
  Options.FindView3ChildOnly = Combo.FindView3ChildOnly;
  Options.ModelListenerCallbacks = Combo.ModelListenerCallbacks;
  Options.DeclaredTypeFilter = Combo.DeclaredTypeFilter;
  return Options;
}

class OptionsMatrix : public ::testing::TestWithParam<unsigned> {};

TEST_P(OptionsMatrix, SoundAndClosedOnConnectBot) {
  OptionCombo Combo = comboFromIndex(GetParam());
  auto App = corpus::buildConnectBotExample();
  ASSERT_TRUE(App && !App->Diags.hasErrors());
  auto R = runAnalysis(*App, toOptions(Combo));
  ASSERT_TRUE(R);

  // 1. The solution is a genuine fixed point under these options.
  for (const std::string &V : checkSolutionClosure(*R))
    ADD_FAILURE() << V;

  // 2. Soundness of the Section 2 facts. The run-time truth (line 10
  // returns the flipper; line 13 the ESC button) must be in the solution
  // under *every* configuration — ablations only ever add.
  auto contains = [&](NodeId N, const std::string &ClassName) {
    for (NodeId V : R->Sol->viewsAt(N))
      if (R->Graph->node(V).Klass->name() == ClassName)
        return true;
    return false;
  };
  NodeId E = varNode(*App, *R, "ConsoleActivity", "onCreate", 0, "e");
  EXPECT_TRUE(contains(E, "android.widget.ViewFlipper"))
      << "line 10 truth lost";
  NodeId GVar = varNode(*App, *R, "ConsoleActivity", "onCreate", 0, "g");
  EXPECT_TRUE(contains(GVar, "android.widget.ImageView"))
      << "line 13 truth lost";

  // 3. The listener association survives every combination (the listener
  // rule itself is never ablated).
  bool EscHasListener = false;
  for (NodeId V : R->Sol->viewsAt(GVar))
    EscHasListener |= !R->Graph->listeners(V).empty();
  EXPECT_TRUE(EscHasListener);

  // 4. The callback parameter is populated exactly when callback modeling
  // is on.
  NodeId Param = varNode(*App, *R, "EscapeButtonListener", "onClick", 1, "r");
  if (Combo.ModelListenerCallbacks)
    EXPECT_FALSE(R->Sol->viewsAt(Param).empty());
  else
    EXPECT_TRUE(R->Sol->viewsAt(Param).empty());

  // 5. With the full configuration the solution is singleton-precise
  // (Table 2's ConnectBot row); ablations may only be coarser.
  auto M = R->metrics();
  if (Combo.TrackViewIds && Combo.TrackHierarchy &&
      Combo.FindView3ChildOnly && Combo.ModelListenerCallbacks)
    EXPECT_DOUBLE_EQ(M.AvgReceivers, 1.0);
  else
    EXPECT_GE(M.AvgReceivers + 1e-9, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllCombos, OptionsMatrix,
                         ::testing::Range(0u, 32u));

} // namespace
