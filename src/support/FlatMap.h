//===- FlatMap.h - Open-addressed integer-keyed map -------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FlatIdMap: an open-addressed uint64 -> V hash map with a single
/// contiguous slot array (docs/MEMORY.md). It replaces the
/// string/pointer-keyed `std::unordered_map` side tables on analysis hot
/// paths: keys are packed interned ids ((symbol << 32) | arity, global
/// decl ids, resource ids), so a probe is one multiply-shift hash and a
/// linear scan of adjacent slots — no per-node heap allocation, no
/// string hashing, no pointer-chasing across buckets.
///
/// Keys are caller-packed uint64s; the all-ones key (~0) is reserved as
/// the empty sentinel. Values must be trivially copyable. erase() uses
/// backward-shift deletion, so probing stays tombstone-free even on the
/// retraction paths of the incremental re-solve (docs/INCREMENTAL.md);
/// the build-time tables still only grow.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_FLATMAP_H
#define GATOR_SUPPORT_FLATMAP_H

#include "support/Hash.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace gator {
namespace support {

template <typename V> class FlatIdMap {
  static_assert(std::is_trivially_copyable_v<V>,
                "FlatIdMap values are relocated by memcpy on rehash");

public:
  static constexpr uint64_t EmptyKey = ~uint64_t(0);

  FlatIdMap() = default;

  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

  void clear() {
    Slots.clear();
    Count = 0;
  }

  /// Inserts or overwrites \p Key -> \p Value.
  void set(uint64_t Key, const V &Value) {
    assert(Key != EmptyKey && "the all-ones key is the empty sentinel");
    if ((Count + 1) * 4 > Slots.size() * 3) // load factor 3/4
      rehash(Slots.empty() ? 16 : Slots.size() * 2);
    Slot &S = findSlot(Key);
    if (S.Key == EmptyKey) {
      S.Key = Key;
      ++Count;
    }
    S.Value = Value;
  }

  /// Returns the value for \p Key, or null if absent. The pointer is
  /// invalidated by the next set().
  const V *get(uint64_t Key) const {
    if (Slots.empty())
      return nullptr;
    const Slot &S = const_cast<FlatIdMap *>(this)->findSlot(Key);
    return S.Key == Key ? &S.Value : nullptr;
  }

  /// Returns the value slot for \p Key, inserting \p Default if absent.
  V &getOrInsert(uint64_t Key, const V &Default) {
    assert(Key != EmptyKey && "the all-ones key is the empty sentinel");
    if ((Count + 1) * 4 > Slots.size() * 3)
      rehash(Slots.empty() ? 16 : Slots.size() * 2);
    Slot &S = findSlot(Key);
    if (S.Key == EmptyKey) {
      S.Key = Key;
      S.Value = Default;
      ++Count;
    }
    return S.Value;
  }

  bool contains(uint64_t Key) const { return get(Key) != nullptr; }

  /// Removes \p Key if present; returns true when an entry was removed.
  /// Backward-shift deletion: later slots whose probe chain crossed the
  /// vacated slot are shifted back, so no tombstones exist and lookups
  /// keep their stop-at-empty invariant.
  bool erase(uint64_t Key) {
    if (Slots.empty())
      return false;
    size_t Mask = Slots.size() - 1;
    size_t I = fibonacciSlot(Key, Mask);
    while (Slots[I].Key != Key) {
      if (Slots[I].Key == EmptyKey)
        return false;
      I = (I + 1) & Mask;
    }
    size_t J = I;
    while (true) {
      J = (J + 1) & Mask;
      if (Slots[J].Key == EmptyKey)
        break;
      size_t Home = fibonacciSlot(Slots[J].Key, Mask);
      // Slots[J] may fill the hole at I only if its probe chain passed
      // through I — i.e. its home slot is cyclically outside (I, J].
      bool HomeInHole = I <= J ? (Home > I && Home <= J)
                               : (Home > I || Home <= J);
      if (!HomeInHole) {
        Slots[I] = Slots[J];
        I = J;
      }
    }
    Slots[I] = Slot{};
    --Count;
    return true;
  }

  void reserve(size_t N) {
    size_t Want = 16;
    while (Want * 3 < N * 4) // invert the 3/4 load factor
      Want *= 2;
    if (Want > Slots.size())
      rehash(Want);
  }

private:
  struct Slot {
    uint64_t Key = EmptyKey;
    V Value{};
  };

  Slot &findSlot(uint64_t Key) {
    // Fibonacci multiply-shift spreads packed ids (which share low-bit
    // structure) across the table; table size is a power of two.
    size_t Mask = Slots.size() - 1;
    size_t I = fibonacciSlot(Key, Mask);
    while (Slots[I].Key != Key && Slots[I].Key != EmptyKey)
      I = (I + 1) & Mask;
    return Slots[I];
  }

  void rehash(size_t NewSize) {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewSize, Slot{});
    for (const Slot &S : Old) {
      if (S.Key == EmptyKey)
        continue;
      size_t Mask = Slots.size() - 1;
      size_t I = fibonacciSlot(S.Key, Mask);
      while (Slots[I].Key != EmptyKey)
        I = (I + 1) & Mask;
      Slots[I] = S;
    }
  }

  std::vector<Slot> Slots;
  size_t Count = 0;
};

/// Packs (interned symbol, small ordinal) into a FlatIdMap key — the
/// method-lookup shape: (name symbol, arity).
inline uint64_t packSymbolKey(uint32_t SymbolIndex, uint32_t Ordinal) {
  return (uint64_t(SymbolIndex) << 32) | Ordinal;
}

} // namespace support
} // namespace gator

#endif // GATOR_SUPPORT_FLATMAP_H
