//===- GraphBuilder.cpp - Constraint graph construction ---------*- C++ -*-===//

#include "analysis/GraphBuilder.h"

#include "support/Trace.h"

#include <unordered_set>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::ir;
using namespace gator::android;

const ClassDecl *GraphBuilder::findClassCached(const std::string &Name) {
  auto [It, Inserted] = ClassCache.try_emplace(&Name, nullptr);
  if (Inserted)
    It->second = P.findClass(Name);
  return It->second;
}

void GraphBuilder::buildResourceNodes(ConstraintGraph &G) {
  const layout::ResourceTable &Res = Layouts.resources();
  for (const std::string &Name : Res.layoutNames())
    G.getLayoutIdNode(Res.lookupLayoutId(Name));
  for (const std::string &Name : Res.viewIdNames())
    G.getViewIdNode(Res.lookupViewId(Name));
}

void GraphBuilder::buildActivityNodes(ConstraintGraph &G) {
  // Section 4.1: "an activity node is created for each activity class, to
  // represent instances created implicitly by the Android platform", with
  // edges "to all this_m variable nodes, where m is a callback method that
  // could be invoked by the framework with this activity as the receiver".
  for (const ClassDecl *A : AM.appActivityClasses()) {
    NodeId ActNode = G.getActivityNode(A);
    // Collect, per callback name/arity, the method the framework call
    // would dispatch to (first concrete match walking up the chain).
    std::unordered_set<std::string> Seen;
    for (const ClassDecl *C = A; C && !C->isPlatform();
         C = C->superClass()) {
      for (const auto &M : C->methods()) {
        if (M->isAbstract() || M->isStatic())
          continue;
        if (!AndroidModel::isLifecycleCallbackName(M->name()))
          continue;
        std::string Key = M->name() + "/" + std::to_string(M->paramCount());
        if (!Seen.insert(Key).second)
          continue; // overridden below; dispatch target already recorded
        addFlow(G, ActNode, G.getVarNode(M, M->thisVar()));
      }
    }
  }
}

void GraphBuilder::buildCallEdges(ConstraintGraph &G, const MethodDecl &M,
                                  const Stmt &S,
                                  const std::vector<const MethodDecl *>
                                      &Targets) {
  for (const MethodDecl *T : Targets) {
    if (T->owner()->isPlatform())
      continue;
    // Receiver into `this`.
    if (!T->isStatic())
      addFlow(G, G.getVarNode(&M, S.Base), G.getVarNode(T, T->thisVar()));
    // Arguments into parameters.
    unsigned N = std::min<unsigned>(T->paramCount(),
                                    static_cast<unsigned>(S.Args.size()));
    for (unsigned I = 0; I < N; ++I)
      addFlow(G, G.getVarNode(&M, S.Args[I]),
                    G.getVarNode(T, T->paramVar(I)));
    // Returned values into the call result.
    if (S.Lhs != InvalidVar) {
      NodeId LhsNode = G.getVarNode(&M, S.Lhs);
      for (const Stmt &Ret : T->body())
        if (Ret.Kind == StmtKind::Return && Ret.Lhs != InvalidVar)
          addFlow(G, G.getVarNode(T, Ret.Lhs), LhsNode);
    }
  }
}

void GraphBuilder::buildOpSite(ConstraintGraph &G, std::vector<OpSite> &Ops,
                               const MethodDecl &M, const Stmt &S,
                               const OpSpec &Spec) {
  // Roles are resolved before the op node is minted so an edit-scale
  // rebuild can match this site against a dead predecessor by (kind,
  // roles) and resurrect its slot — keeping op indices and OpNode ids
  // stable memo keys (docs/INCREMENTAL.md). Role-edge emission order below
  // matches the historical per-kind order (Recv, IdArg, AttachParent /
  // ValArg, Out) byte for byte.
  OpSite Site;
  Site.Spec = Spec;
  Site.Method = &M;
  Site.Recv = G.getVarNode(&M, S.Base);

  auto argNode = [&](unsigned I) { return G.getVarNode(&M, S.Args[I]); };

  switch (Spec.Kind) {
  case OpKind::Inflate1:
    Site.IdArg = argNode(0);
    if (Spec.AttachParentArgIndex >= 0)
      Site.AttachParent = argNode(Spec.AttachParentArgIndex);
    break;
  case OpKind::Inflate2:
  case OpKind::SetId:
  case OpKind::FindView1:
  case OpKind::FindView2:
    Site.IdArg = argNode(0);
    break;
  case OpKind::AddView1:
  case OpKind::AddView2:
  case OpKind::SetListener:
  case OpKind::SetAdapter:
  case OpKind::StartActivity:
    Site.ValArg = argNode(0);
    break;
  case OpKind::SetIntentClass:
    Site.ValArg = argNode(1); // the Class argument
    break;
  case OpKind::FragmentAdd:
    Site.IdArg = argNode(0);
    Site.ValArg = argNode(1); // the Fragment argument
    break;
  case OpKind::FindView3:
    break; // receiver only (getChildAt's index is not a view id)
  }

  if (S.Lhs != InvalidVar)
    Site.Out = G.getVarNode(&M, S.Lhs);

  uint32_t Reused = OpReuse ? OpReuse(Site) : ~0u;
  if (Reused != ~0u) {
    Site.OpNode = Ops[Reused].OpNode;
    Ops[Reused] = Site; // Dead defaults false: the slot is live again
  } else {
    Site.OpNode = G.makeOpNode(Spec.Kind, S.Loc, Spec.Listener, Spec.ChildOnly);
    Ops.push_back(Site);
  }

  addFlow(G, Site.Recv, Site.OpNode);
  if (Site.IdArg != InvalidNode)
    addFlow(G, Site.IdArg, Site.OpNode);
  if (Site.ValArg != InvalidNode)
    addFlow(G, Site.ValArg, Site.OpNode);
  if (Site.AttachParent != InvalidNode)
    addFlow(G, Site.AttachParent, Site.OpNode);
  if (Site.Out != InvalidNode)
    addFlow(G, Site.OpNode, Site.Out);
}

void GraphBuilder::buildInvoke(ConstraintGraph &G, std::vector<OpSite> &Ops,
                               const MethodDecl &M, const Stmt &S) {
  // Unknown-source modeling (docs/ROBUSTNESS.md): calls the analysis cannot
  // resolve to a value become tagged unknown nodes instead of dropped facts.
  // `c.newInstance()` is reflective construction — the result may be any
  // view; `res.getIdentifier(...)` computes a resource id at runtime — the
  // result may be any id. Only fires when normal resolution failed.
  auto mintUnknownResult = [&]() -> bool {
    if (!ModelUnknown || S.Lhs == InvalidVar)
      return false;
    if (S.MethodName == "newInstance" && S.Args.empty()) {
      addFlow(G, 
          G.makeUnknownViewNode(UnknownReason::ReflectiveNew, &M, S.Loc),
          G.getVarNode(&M, S.Lhs));
      return true;
    }
    if (S.MethodName == "getIdentifier") {
      addFlow(G, G.makeUnknownIdNode(UnknownReason::DynamicId, &M, S.Loc),
                    G.getVarNode(&M, S.Lhs));
      return true;
    }
    return false;
  };

  const Variable &BaseVar = M.var(S.Base);
  const ClassDecl *Recv =
      BaseVar.TypeName.empty() ? nullptr : findClassCached(BaseVar.TypeName);
  if (!Recv) {
    // Unknown receiver type: no call edges (verifier already warned), but a
    // reflective/dynamic result is still modeled.
    mintUnknownResult();
    return;
  }

  unsigned Arity = static_cast<unsigned>(S.Args.size());
  const MethodDecl *Resolved = Recv->findMethod(S.MethodName, Arity);

  // A call whose static resolution lands on a *platform stub* is an
  // Android operation (Section 3.2 semantics); a concrete application
  // method is an ordinary call. Concrete overrides of platform methods in
  // subtypes receive call edges in either case via CHA.
  bool PlatformTarget =
      Resolved && Resolved->isAbstract() && Resolved->owner()->isPlatform();
  if (PlatformTarget || !Resolved) {
    if (std::optional<OpSpec> Spec = AM.classifyInvoke(M, S)) {
      buildOpSite(G, Ops, M, S, *Spec);
    } else if (PlatformTarget && AM.listClass() &&
               P.isSubtypeOf(Recv, AM.listClass())) {
      // Collection modeling: `list.add(v)` / `v := list.get(i)` /
      // `v := list.remove(i)` flow through the artificial field
      // java.util.List.elements (field-based, merged over all lists) so
      // views stored in collections remain trackable.
      const ir::FieldDecl *Elements = AM.listElementsField();
      if (Elements) {
        if (S.MethodName == "add" && S.Args.size() == 1)
          addFlow(G, G.getVarNode(&M, S.Args[0]),
                        G.getFieldNode(Elements));
        else if ((S.MethodName == "get" || S.MethodName == "remove") &&
                 S.Lhs != InvalidVar)
          addFlow(G, G.getFieldNode(Elements), G.getVarNode(&M, S.Lhs));
      }
    } else {
      mintUnknownResult();
    }
  }
  buildCallEdges(G, M, S,
                 CH.resolveVirtualCall(Recv, S.MethodName, Arity));
}

void GraphBuilder::buildMethod(ConstraintGraph &G, std::vector<OpSite> &Ops,
                               const MethodDecl &M) {
  const layout::ResourceTable &Res = Layouts.resources();
  for (size_t I = 0; I < M.body().size(); ++I) {
    const Stmt &S = M.body()[I];
    switch (S.Kind) {
    case StmtKind::AssignVar:
      addFlow(G, G.getVarNode(&M, S.Base), G.getVarNode(&M, S.Lhs));
      break;
    case StmtKind::AssignNew: {
      const ClassDecl *C = findClassCached(S.ClassName);
      if (!C) {
        // Unresolved class (missing library, obfuscated name): model the
        // allocation as an unknown view rather than silently dropping it
        // (docs/ROBUSTNESS.md).
        if (ModelUnknown && S.Lhs != InvalidVar) {
          Diags.warning(S.Loc, "new of unresolved class '" + S.ClassName +
                                   "'; modeling result as unknown");
          addFlow(G, 
              G.makeUnknownViewNode(UnknownReason::UnknownClass, &M, S.Loc),
              G.getVarNode(&M, S.Lhs));
        }
        break;
      }
      bool IsView = AM.isViewClass(C);
      NodeId Alloc = G.getAllocNode(&M, static_cast<int32_t>(I), C, IsView,
                                    S.Loc);
      addFlow(G, Alloc, G.getVarNode(&M, S.Lhs));
      // Dialogs are created by the application but their lifecycle
      // callbacks (onCreate etc.) are invoked by the framework, exactly
      // like activities (Section 3.2's "similar operations on non-
      // activity objects"). Seed the allocation into each callback's
      // `this`.
      if (AM.isWindowClass(C) && !AM.isActivityClass(C)) {
        std::unordered_set<std::string> Seen;
        for (const ClassDecl *Walk = C; Walk && !Walk->isPlatform();
             Walk = Walk->superClass())
          for (const auto &Callback : Walk->methods()) {
            if (Callback->isAbstract() || Callback->isStatic())
              continue;
            if (!android::AndroidModel::isLifecycleCallbackName(
                    Callback->name()))
              continue;
            std::string Key = Callback->name() + "/" +
                              std::to_string(Callback->paramCount());
            if (!Seen.insert(Key).second)
              continue;
            addFlow(G, Alloc,
                          G.getVarNode(Callback, Callback->thisVar()));
          }
      }
      break;
    }
    case StmtKind::AssignNull:
      break;
    case StmtKind::LoadField: {
      const Variable &BaseVar = M.var(S.Base);
      const ClassDecl *C =
          BaseVar.TypeName.empty() ? nullptr : findClassCached(BaseVar.TypeName);
      const FieldDecl *F = C ? C->findField(S.FieldName) : nullptr;
      if (F)
        addFlow(G, G.getFieldNode(F), G.getVarNode(&M, S.Lhs));
      break;
    }
    case StmtKind::StoreField: {
      const Variable &BaseVar = M.var(S.Base);
      const ClassDecl *C =
          BaseVar.TypeName.empty() ? nullptr : findClassCached(BaseVar.TypeName);
      const FieldDecl *F = C ? C->findField(S.FieldName) : nullptr;
      if (F)
        addFlow(G, G.getVarNode(&M, S.Rhs), G.getFieldNode(F));
      break;
    }
    case StmtKind::LoadStaticField: {
      const ClassDecl *C = findClassCached(S.ClassName);
      const FieldDecl *F = C ? C->findField(S.FieldName) : nullptr;
      if (F)
        addFlow(G, G.getFieldNode(F), G.getVarNode(&M, S.Lhs));
      break;
    }
    case StmtKind::StoreStaticField: {
      const ClassDecl *C = findClassCached(S.ClassName);
      const FieldDecl *F = C ? C->findField(S.FieldName) : nullptr;
      if (F)
        addFlow(G, G.getVarNode(&M, S.Rhs), G.getFieldNode(F));
      break;
    }
    case StmtKind::AssignLayoutId: {
      layout::ResourceId Id = Res.lookupLayoutId(S.ResourceName);
      if (Id == layout::InvalidResourceId) {
        Diags.warning(S.Loc, "reference to unknown layout '@layout/" +
                                 S.ResourceName + "'");
        // Missing layout resource: the id still reaches inflate sites as a
        // tagged unknown so downstream ops degrade instead of vanishing.
        if (ModelUnknown && S.Lhs != InvalidVar)
          addFlow(G, 
              G.makeUnknownIdNode(UnknownReason::MissingLayout, &M, S.Loc),
              G.getVarNode(&M, S.Lhs));
        break;
      }
      addFlow(G, G.getLayoutIdNode(Id), G.getVarNode(&M, S.Lhs));
      break;
    }
    case StmtKind::AssignViewId: {
      // View ids may be referenced in code even when no layout declares
      // them (e.g. used only with setId); intern on demand.
      layout::ResourceId Id =
          Layouts.resources().internViewId(S.ResourceName);
      addFlow(G, G.getViewIdNode(Id), G.getVarNode(&M, S.Lhs));
      break;
    }
    case StmtKind::AssignClassConst: {
      const ClassDecl *C = findClassCached(S.ClassName);
      if (C)
        addFlow(G, G.getClassConstNode(C), G.getVarNode(&M, S.Lhs));
      break;
    }
    case StmtKind::Invoke:
      buildInvoke(G, Ops, M, S);
      break;
    case StmtKind::Return:
      break; // return edges are added per call site
    }
  }
}

bool GraphBuilder::build(ConstraintGraph &G, std::vector<OpSite> &Ops) {
  unsigned ErrorsBefore = Diags.errorCount();
  // Pre-size the graph: roughly one node per application-method variable
  // (the dominant kind) plus slack for ops, allocs, ids, and inflations;
  // roughly one flow edge per statement.
  size_t VarHint = 0, StmtHint = 0;
  for (const auto &C : P.classes()) {
    if (C->isPlatform())
      continue;
    for (const auto &M : C->methods()) {
      VarHint += M->vars().size();
      StmtHint += M->body().size();
    }
  }
  // Beyond one node per variable, statements mint op/alloc/id nodes and
  // the solver mints ViewInfl trees per (inflate site, layout), so leave
  // generous slack: re-reserving mid-solve moves every Node (and its
  // SourceLocation string), which showed up heavily in profiles.
  G.reserve(VarHint + VarHint / 2 + StmtHint / 2 + 256, StmtHint + 64);
  {
    support::TraceSpan S(Trace, "graph-build.resources");
    buildResourceNodes(G);
  }
  {
    support::TraceSpan S(Trace, "graph-build.activities");
    buildActivityNodes(G);
  }
  {
    support::TraceSpan S(Trace, "graph-build.methods");
    unsigned long Methods = 0;
    for (const auto &C : P.classes()) {
      if (C->isPlatform())
        continue;
      for (const auto &M : C->methods())
        if (!M->isAbstract()) {
          buildMethod(G, Ops, *M);
          ++Methods;
        }
    }
    S.arg("methods", Methods);
  }
  return Diags.errorCount() == ErrorsBefore;
}
