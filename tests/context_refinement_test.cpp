//===- context_refinement_test.cpp - Call-site cloning tests ----*- C++ -*-===//

#include "analysis/ContextRefinement.h"
#include "ir/Verifier.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::test;

namespace {

const char *TwoActivityApp = R"(
class Base extends android.app.Activity {
  method lookup(a: int): android.view.View {
    var r: android.view.View;
    r := this.findViewById(a);
    return r;
  }
}
class A1 extends Base {
  method onCreate() {
    var lid: int;
    var wid: int;
    var v: android.view.View;
    lid := @layout/main1;
    this.setContentView(lid);
    wid := @id/w1;
    v := this.lookup(wid);
  }
}
class A2 extends Base {
  method onCreate() {
    var lid: int;
    var wid: int;
    var v: android.view.View;
    lid := @layout/main2;
    this.setContentView(lid);
    wid := @id/w2;
    v := this.lookup(wid);
  }
}
)";

const std::vector<std::pair<std::string, std::string>> TwoLayouts = {
    {"main1", "<LinearLayout><Button android:id=\"@+id/w1\"/></LinearLayout>"},
    {"main2", "<LinearLayout><TextView android:id=\"@+id/w2\"/></LinearLayout>"}};

TEST(ContextRefinementTest, StockAnalysisMergesHelperContexts) {
  auto App = makeBundle(TwoActivityApp, TwoLayouts);
  auto R = runAnalysis(*App);
  // Both activities' lookups merge through Base.lookup's return variable.
  NodeId V1 = varNode(*App, *R, "A1", "onCreate", 0, "v");
  EXPECT_EQ(viewClassesAt(*R, V1),
            (std::vector<std::string>{"android.widget.Button",
                                      "android.widget.TextView"}));
}

TEST(ContextRefinementTest, CloningRestoresPrecision) {
  auto App = makeBundle(TwoActivityApp, TwoLayouts);
  ContextRefinementStats Stats = applyContextRefinement(
      App->Program, App->Android, /*MaxHelperStmts=*/12, App->Diags);
  EXPECT_EQ(Stats.HelpersCloned, 1u);
  EXPECT_EQ(Stats.CallSitesRewritten, 1u); // second site gets the clone

  auto R = runAnalysis(*App);
  NodeId V1 = varNode(*App, *R, "A1", "onCreate", 0, "v");
  NodeId V2 = varNode(*App, *R, "A2", "onCreate", 0, "v");
  EXPECT_EQ(viewClassesAt(*R, V1),
            std::vector<std::string>{"android.widget.Button"});
  EXPECT_EQ(viewClassesAt(*R, V2),
            std::vector<std::string>{"android.widget.TextView"});
}

TEST(ContextRefinementTest, SingleCallerNotCloned) {
  auto App = makeBundle(R"(
class Base extends android.app.Activity {
  method lookup(a: int): android.view.View {
    var r: android.view.View;
    r := this.findViewById(a);
    return r;
  }
}
class A1 extends Base {
  method onCreate() {
    var wid: int;
    var v: android.view.View;
    wid := @id/w1;
    v := this.lookup(wid);
  }
}
)");
  ContextRefinementStats Stats = applyContextRefinement(
      App->Program, App->Android, 12, App->Diags);
  EXPECT_EQ(Stats.HelpersCloned, 0u);
}

TEST(ContextRefinementTest, LargeHelpersNotCloned) {
  auto App = makeBundle(TwoActivityApp, TwoLayouts);
  ContextRefinementStats Stats = applyContextRefinement(
      App->Program, App->Android, /*MaxHelperStmts=*/1, App->Diags);
  EXPECT_EQ(Stats.HelpersCloned, 0u);
}

TEST(ContextRefinementTest, NonViewReturningHelpersNotCloned) {
  auto App = makeBundle(R"(
class Util {
  method make(): java.lang.Object {
    var r: java.lang.Object;
    r := new java.lang.Object;
    return r;
  }
}
class C1 {
  method m(u: Util) {
    var x: java.lang.Object;
    x := u.make();
  }
}
class C2 {
  method m(u: Util) {
    var x: java.lang.Object;
    x := u.make();
  }
}
)");
  ContextRefinementStats Stats = applyContextRefinement(
      App->Program, App->Android, 12, App->Diags);
  EXPECT_EQ(Stats.HelpersCloned, 0u);
}

TEST(ContextRefinementTest, PolymorphicSitesNotRewritten) {
  auto App = makeBundle(R"(
class Base extends android.app.Activity {
  method pickView(): android.view.View {
    var r: android.widget.Button;
    r := new android.widget.Button;
    return r;
  }
}
class Sub extends Base {
  method pickView(): android.view.View {
    var r: android.widget.TextView;
    r := new android.widget.TextView;
    return r;
  }
}
class U1 {
  method m(b: Base) {
    var v: android.view.View;
    v := b.pickView();
  }
}
class U2 {
  method m(b: Base) {
    var v: android.view.View;
    v := b.pickView();
  }
}
)");
  // Receiver type Base has two CHA targets: cloning would alter dispatch,
  // so nothing happens.
  ContextRefinementStats Stats = applyContextRefinement(
      App->Program, App->Android, 12, App->Diags);
  EXPECT_EQ(Stats.CallSitesRewritten, 0u);
}

TEST(ContextRefinementTest, ClonesAreWellFormed) {
  auto App = makeBundle(TwoActivityApp, TwoLayouts);
  applyContextRefinement(App->Program, App->Android, 12, App->Diags);
  DiagnosticEngine VDiags;
  EXPECT_TRUE(ir::verifyProgram(App->Program, VDiags));
  EXPECT_EQ(VDiags.errorCount(), 0u);
  // The clone exists on the helper's class with a distinct name.
  const ir::ClassDecl *Base = App->Program.findClass("Base");
  unsigned Lookups = 0;
  for (const auto &M : Base->methods())
    if (M->name().rfind("lookup", 0) == 0)
      ++Lookups;
  EXPECT_EQ(Lookups, 2u);
}

} // namespace
