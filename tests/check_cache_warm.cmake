# Content-addressed cache contract (docs/INCREMENTAL.md), CLI level:
#  1. a cold run with --cache-dir populates the disk tier;
#  2. a warm run replays byte-identical stdout and the same exit code;
#  3. a warm *batch* run stays byte-identical at -j 1/2/4/8;
#  4. poisoning every cached artifact degrades the next run to a full
#     solve — same stdout, same exit code as cold, a warning on stderr —
#     never a crash, never different results.
# Invoked by ctest with -DCLI=<gator_cli> -DAPP=<single app dir>
# -DDIR=<batch input dir> -DWORK=<scratch dir>.

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})
set(cache_dir ${WORK}/cache)

# --- Single app: cold, then warm ---------------------------------------
execute_process(
  COMMAND ${CLI} ${APP} --tuples --solution --no-times --cache-dir ${cache_dir}
  OUTPUT_VARIABLE cold_out ERROR_VARIABLE cold_err RESULT_VARIABLE cold_code)
file(GLOB cached_entries ${cache_dir}/*.gsc)
if(cached_entries STREQUAL "")
  message(FATAL_ERROR "cold run left no .gsc artifact in ${cache_dir}")
endif()

execute_process(
  COMMAND ${CLI} ${APP} --tuples --solution --no-times --cache-dir ${cache_dir}
  OUTPUT_VARIABLE warm_out ERROR_VARIABLE warm_err RESULT_VARIABLE warm_code)
if(NOT warm_out STREQUAL cold_out)
  message(FATAL_ERROR "warm stdout differs from cold stdout")
endif()
if(NOT warm_code EQUAL cold_code)
  message(FATAL_ERROR
    "warm exit code ${warm_code} differs from cold ${cold_code}")
endif()

# --- Warm batch determinism across job counts --------------------------
execute_process(
  COMMAND ${CLI} --batch --no-times -j 1 --cache-dir ${cache_dir} ${DIR}
  OUTPUT_VARIABLE batch_ref_out ERROR_VARIABLE batch_ref_err
  RESULT_VARIABLE batch_ref_code)
foreach(jobs 2 4 8)
  execute_process(
    COMMAND ${CLI} --batch --no-times -j ${jobs} --cache-dir ${cache_dir} ${DIR}
    OUTPUT_VARIABLE batch_out ERROR_VARIABLE batch_err
    RESULT_VARIABLE batch_code)
  if(NOT batch_out STREQUAL batch_ref_out)
    message(FATAL_ERROR
      "warm batch stdout differs between -j 1 and -j ${jobs}")
  endif()
  if(NOT batch_err STREQUAL batch_ref_err)
    message(FATAL_ERROR
      "warm batch stderr differs between -j 1 and -j ${jobs}")
  endif()
  if(NOT batch_code EQUAL batch_ref_code)
    message(FATAL_ERROR
      "warm batch exit code differs between -j 1 and -j ${jobs}")
  endif()
endforeach()

# --- Poisoned artifacts degrade to a full solve ------------------------
file(GLOB cached_entries ${cache_dir}/*.gsc)
foreach(entry ${cached_entries})
  file(WRITE ${entry} "poisoned, not a GSC1 artifact")
endforeach()
execute_process(
  COMMAND ${CLI} ${APP} --tuples --solution --no-times --cache-dir ${cache_dir}
  OUTPUT_VARIABLE poisoned_out ERROR_VARIABLE poisoned_err
  RESULT_VARIABLE poisoned_code)
if(NOT poisoned_out STREQUAL cold_out)
  message(FATAL_ERROR "poisoned-cache stdout differs from cold stdout")
endif()
if(NOT poisoned_code EQUAL cold_code)
  message(FATAL_ERROR
    "poisoned-cache exit code ${poisoned_code} differs from cold "
    "${cold_code}")
endif()
if(NOT poisoned_err MATCHES "corrupt cache entry")
  message(FATAL_ERROR
    "poisoned-cache run printed no corrupt-entry diagnostic:\n"
    "${poisoned_err}")
endif()

message(STATUS "cache cold/warm/poisoned contract holds (exit ${cold_code})")
