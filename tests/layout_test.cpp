//===- layout_test.cpp - Resource table and layout model --------*- C++ -*-===//

#include "layout/Layout.h"
#include "layout/LayoutWriter.h"
#include "layout/ResourceTable.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace gator;
using namespace gator::layout;

namespace {

//===----------------------------------------------------------------------===//
// ResourceTable
//===----------------------------------------------------------------------===//

TEST(ResourceTableTest, LayoutIdsFollowAaptConvention) {
  ResourceTable Table;
  ResourceId A = Table.internLayoutId("act_console");
  ResourceId B = Table.internLayoutId("item_terminal");
  EXPECT_EQ(A, ResourceTable::LayoutIdBase);
  EXPECT_EQ(B, ResourceTable::LayoutIdBase + 1);
  EXPECT_EQ(Table.internLayoutId("act_console"), A); // idempotent
  EXPECT_EQ(Table.layoutCount(), 2u);
}

TEST(ResourceTableTest, ViewIdsLiveInSeparateSpace) {
  ResourceTable Table;
  ResourceId L = Table.internLayoutId("main");
  ResourceId V = Table.internViewId("main"); // same name, different space
  EXPECT_NE(L, V);
  EXPECT_TRUE(Table.isLayoutId(L));
  EXPECT_FALSE(Table.isViewId(L));
  EXPECT_TRUE(Table.isViewId(V));
}

TEST(ResourceTableTest, ReverseLookup) {
  ResourceTable Table;
  ResourceId V = Table.internViewId("button_esc");
  ASSERT_TRUE(Table.viewIdName(V).has_value());
  EXPECT_EQ(*Table.viewIdName(V), "button_esc");
  EXPECT_FALSE(Table.viewIdName(12345).has_value());
  EXPECT_FALSE(Table.layoutName(V).has_value());
}

TEST(ResourceTableTest, LookupWithoutInterning) {
  ResourceTable Table;
  EXPECT_EQ(Table.lookupLayoutId("ghost"), InvalidResourceId);
  EXPECT_EQ(Table.lookupViewId("ghost"), InvalidResourceId);
}

//===----------------------------------------------------------------------===//
// Layout reading
//===----------------------------------------------------------------------===//

TEST(LayoutTest, ReadsTreeWithIds) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  LayoutDef *Def = readLayoutXml(Registry, "main", R"(
<LinearLayout android:id="@+id/root">
  <TextView android:id="@+id/title" />
  <Button />
</LinearLayout>
)",
                                 Diags);
  ASSERT_NE(Def, nullptr);
  ASSERT_TRUE(Registry.resolveIncludes(Diags));
  EXPECT_FALSE(Diags.hasErrors());

  const LayoutNode *Root = Def->root();
  EXPECT_EQ(Root->viewClassName(), "LinearLayout");
  EXPECT_EQ(Root->viewIdName(), "root");
  ASSERT_EQ(Root->children().size(), 2u);
  EXPECT_EQ(Root->children()[0]->viewIdName(), "title");
  EXPECT_FALSE(Root->children()[1]->hasViewId());
  EXPECT_EQ(Root->subtreeSize(), 3u);

  // resolveIncludes interns every view id.
  EXPECT_NE(Resources.lookupViewId("root"), InvalidResourceId);
  EXPECT_NE(Resources.lookupViewId("title"), InvalidResourceId);
}

TEST(LayoutTest, FindByNameAndById) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  LayoutDef *Def = readLayoutXml(Registry, "main", "<View/>", Diags);
  ASSERT_NE(Def, nullptr);
  EXPECT_EQ(Registry.findByName("main"), Def);
  EXPECT_EQ(Registry.findById(Def->id()), Def);
  EXPECT_EQ(Registry.findByName("ghost"), nullptr);
  EXPECT_EQ(Registry.findById(0), nullptr);
}

TEST(LayoutTest, DuplicateLayoutNameRejected) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  EXPECT_NE(readLayoutXml(Registry, "main", "<View/>", Diags), nullptr);
  EXPECT_EQ(readLayoutXml(Registry, "main", "<View/>", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LayoutTest, IncludeExpandsTargetTree) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  ASSERT_NE(readLayoutXml(Registry, "titlebar", R"(
<RelativeLayout android:id="@+id/bar">
  <TextView android:id="@+id/bar_text" />
</RelativeLayout>
)",
                          Diags),
            nullptr);
  LayoutDef *Main = readLayoutXml(Registry, "main", R"(
<LinearLayout>
  <include layout="@layout/titlebar" />
  <Button android:id="@+id/ok" />
</LinearLayout>
)",
                                  Diags);
  ASSERT_NE(Main, nullptr);
  ASSERT_TRUE(Registry.resolveIncludes(Diags));

  ASSERT_EQ(Main->root()->children().size(), 2u);
  const LayoutNode *Included = Main->root()->children()[0].get();
  EXPECT_EQ(Included->viewClassName(), "RelativeLayout");
  EXPECT_EQ(Included->viewIdName(), "bar");
  ASSERT_EQ(Included->children().size(), 1u);
  EXPECT_EQ(Included->children()[0]->viewIdName(), "bar_text");
}

TEST(LayoutTest, IncludeIdOverride) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  ASSERT_NE(readLayoutXml(Registry, "inner",
                          "<TextView android:id=\"@+id/original\"/>", Diags),
            nullptr);
  LayoutDef *Main = readLayoutXml(
      Registry, "main",
      R"(<LinearLayout>
           <include layout="@layout/inner" android:id="@+id/override" />
         </LinearLayout>)",
      Diags);
  ASSERT_NE(Main, nullptr);
  ASSERT_TRUE(Registry.resolveIncludes(Diags));
  EXPECT_EQ(Main->root()->children()[0]->viewIdName(), "override");
}

TEST(LayoutTest, MergeSplicesChildren) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  ASSERT_NE(readLayoutXml(Registry, "buttons", R"(
<merge>
  <Button android:id="@+id/yes" />
  <Button android:id="@+id/no" />
</merge>
)",
                          Diags),
            nullptr);
  LayoutDef *Main = readLayoutXml(
      Registry, "main",
      R"(<LinearLayout><include layout="@layout/buttons"/></LinearLayout>)",
      Diags);
  ASSERT_NE(Main, nullptr);
  ASSERT_TRUE(Registry.resolveIncludes(Diags));
  // The two buttons splice directly under main's root; no merge node.
  ASSERT_EQ(Main->root()->children().size(), 2u);
  EXPECT_EQ(Main->root()->children()[0]->viewIdName(), "yes");
  EXPECT_EQ(Main->root()->children()[1]->viewIdName(), "no");
}

TEST(LayoutTest, IncludeCycleDetected) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  ASSERT_NE(readLayoutXml(
                Registry, "a",
                R"(<LinearLayout><include layout="@layout/b"/></LinearLayout>)",
                Diags),
            nullptr);
  ASSERT_NE(readLayoutXml(
                Registry, "b",
                R"(<LinearLayout><include layout="@layout/a"/></LinearLayout>)",
                Diags),
            nullptr);
  EXPECT_FALSE(Registry.resolveIncludes(Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LayoutTest, IncludeOfUnknownLayoutIsError) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  ASSERT_NE(readLayoutXml(
                Registry, "main",
                R"(<LinearLayout><include layout="@layout/ghost"/></LinearLayout>)",
                Diags),
            nullptr);
  EXPECT_FALSE(Registry.resolveIncludes(Diags));
}

TEST(LayoutTest, IncludeWithoutLayoutAttrIsError) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  EXPECT_EQ(readLayoutXml(Registry, "main",
                          "<LinearLayout><include/></LinearLayout>", Diags),
            nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(LayoutTest, CloneIsDeep) {
  LayoutNode Root("LinearLayout", "root");
  Root.addChild(std::make_unique<LayoutNode>("Button", "b"));
  auto Copy = Root.clone();
  ASSERT_EQ(Copy->children().size(), 1u);
  EXPECT_NE(Copy->children()[0].get(), Root.children()[0].get());
  EXPECT_EQ(Copy->children()[0]->viewIdName(), "b");
}

TEST(LayoutWriterTest, WriteReadRoundTrip) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  LayoutDef *Def = readLayoutXml(Registry, "main", R"(
<LinearLayout android:id="@+id/root">
  <Button android:id="@+id/ok" android:onClick="onOk" />
  <FrameLayout>
    <TextView />
  </FrameLayout>
</LinearLayout>
)",
                                 Diags);
  ASSERT_NE(Def, nullptr);
  std::string Xml = layoutToXml(*Def);

  ResourceTable Resources2;
  LayoutRegistry Registry2(Resources2);
  LayoutDef *Def2 = readLayoutXml(Registry2, "main", Xml, Diags);
  ASSERT_NE(Def2, nullptr) << Xml;
  EXPECT_FALSE(Diags.hasErrors());

  // Structure survives: same ids, handler names, and shape.
  EXPECT_EQ(Def2->root()->viewIdName(), "root");
  ASSERT_EQ(Def2->root()->children().size(), 2u);
  const LayoutNode *Ok = Def2->root()->children()[0].get();
  EXPECT_EQ(Ok->viewClassName(), "Button");
  EXPECT_EQ(Ok->viewIdName(), "ok");
  EXPECT_EQ(Ok->onClickHandlerName(), "onOk");
  EXPECT_EQ(Def2->root()->subtreeSize(), 4u);
  // A second write is a fixed point.
  EXPECT_EQ(layoutToXml(*Def2), Xml);
}

TEST(LayoutWriterTest, WritesIncludePlaceholders) {
  LayoutNode Root("LinearLayout", "");
  auto Include = std::make_unique<LayoutNode>("", "override");
  Include->setIncludeLayoutName("titlebar");
  Root.addChild(std::move(Include));
  std::ostringstream OS;
  writeLayoutXml(Root, OS);
  EXPECT_NE(OS.str().find("<include layout=\"@layout/titlebar\" "
                          "android:id=\"@+id/override\" />"),
            std::string::npos);
}

TEST(LayoutTest, OnClickAttributeParsed) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  LayoutDef *Def = readLayoutXml(
      Registry, "main",
      "<Button android:onClick=\"handleTap\"/>", Diags);
  ASSERT_NE(Def, nullptr);
  EXPECT_TRUE(Def->root()->hasOnClickHandler());
  EXPECT_EQ(Def->root()->onClickHandlerName(), "handleTap");
}

TEST(LayoutTest, UnrecognizedIdAttributeWarns) {
  ResourceTable Resources;
  LayoutRegistry Registry(Resources);
  DiagnosticEngine Diags;
  ASSERT_NE(readLayoutXml(Registry, "main",
                          "<View android:id=\"bogus\"/>", Diags),
            nullptr);
  EXPECT_EQ(Diags.warningCount(), 1u);
}

} // namespace
