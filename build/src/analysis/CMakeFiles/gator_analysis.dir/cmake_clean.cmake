file(REMOVE_RECURSE
  "CMakeFiles/gator_analysis.dir/AppStats.cpp.o"
  "CMakeFiles/gator_analysis.dir/AppStats.cpp.o.d"
  "CMakeFiles/gator_analysis.dir/ContextRefinement.cpp.o"
  "CMakeFiles/gator_analysis.dir/ContextRefinement.cpp.o.d"
  "CMakeFiles/gator_analysis.dir/GraphBuilder.cpp.o"
  "CMakeFiles/gator_analysis.dir/GraphBuilder.cpp.o.d"
  "CMakeFiles/gator_analysis.dir/GuiAnalysis.cpp.o"
  "CMakeFiles/gator_analysis.dir/GuiAnalysis.cpp.o.d"
  "CMakeFiles/gator_analysis.dir/PhasedSolver.cpp.o"
  "CMakeFiles/gator_analysis.dir/PhasedSolver.cpp.o.d"
  "CMakeFiles/gator_analysis.dir/Solution.cpp.o"
  "CMakeFiles/gator_analysis.dir/Solution.cpp.o.d"
  "CMakeFiles/gator_analysis.dir/SolutionChecker.cpp.o"
  "CMakeFiles/gator_analysis.dir/SolutionChecker.cpp.o.d"
  "CMakeFiles/gator_analysis.dir/Solver.cpp.o"
  "CMakeFiles/gator_analysis.dir/Solver.cpp.o.d"
  "libgator_analysis.a"
  "libgator_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
