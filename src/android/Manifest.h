//===- Manifest.h - AndroidManifest.xml model -------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader for the application manifest. Real Android apps declare their
/// activities and the launcher entry point in AndroidManifest.xml; the
/// GATOR tool family consumes it to know where GUI exploration starts.
/// Supported subset:
///
///   <manifest package="com.example.app">
///     <application>
///       <activity android:name=".MainActivity">
///         <intent-filter>
///           <action android:name="android.intent.action.MAIN" />
///           <category android:name="android.intent.category.LAUNCHER" />
///         </intent-filter>
///       </activity>
///       <activity android:name="com.example.app.Other" />
///     </application>
///   </manifest>
///
/// Names starting with '.' are resolved against the package attribute.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANDROID_MANIFEST_H
#define GATOR_ANDROID_MANIFEST_H

#include "support/Diagnostics.h"

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gator {
namespace android {

/// One declared activity.
struct ManifestActivity {
  std::string ClassName; ///< fully resolved qualified name
  bool IsLauncher = false;
};

/// The parsed manifest.
struct Manifest {
  std::string Package;
  std::vector<ManifestActivity> Activities;

  /// The launcher activity's class name, if one is declared.
  std::optional<std::string> launcherActivity() const {
    for (const ManifestActivity &A : Activities)
      if (A.IsLauncher)
        return A.ClassName;
    return std::nullopt;
  }
};

/// Parses manifest XML text. Returns nullopt after reporting errors.
std::optional<Manifest> parseManifest(std::string_view XmlText,
                                      const std::string &FileName,
                                      DiagnosticEngine &Diags);

} // namespace android
} // namespace gator

#endif // GATOR_ANDROID_MANIFEST_H
