//===- DifferentialHelpers.h - Solution-equality test helpers ---*- C++ -*-===//
//
// Shared between differential_test.cpp (fused vs. phased engines) and
// solver_delta_test.cpp (delta vs. naive propagation): a node-id-independent
// fingerprint of an analysis solution and a full structural comparison.
//
//===----------------------------------------------------------------------===//

#ifndef GATOR_TESTS_DIFFERENTIALHELPERS_H
#define GATOR_TESTS_DIFFERENTIALHELPERS_H

#include "analysis/GuiAnalysis.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

namespace gator {
namespace test {

/// A node-id-independent fingerprint of one solution: for every variable
/// and field node (identified by stable names), the multiset of value
/// labels reaching it, with ViewInfl labels normalized to
/// (class, layoutNodeId-name) — site identity folded away only in the
/// label, which is enough because all engines mint per (site, layout).
inline std::map<std::string, std::multiset<std::string>>
fingerprint(const analysis::AnalysisResult &R) {
  const graph::ConstraintGraph &G = *R.Graph;
  std::map<std::string, std::multiset<std::string>> Print;
  for (graph::NodeId N = 0; N < G.size(); ++N) {
    graph::NodeKind K = G.node(N).Kind;
    if (K != graph::NodeKind::Var && K != graph::NodeKind::Field)
      continue;
    auto &Labels = Print[G.label(N)];
    for (graph::NodeId V : R.Sol->valuesAt(N))
      Labels.insert(G.label(V));
  }
  return Print;
}

struct EdgeCounts {
  size_t ParentChild, Flow, Nodes, ViewInfl;
};

inline EdgeCounts edgeCounts(const analysis::AnalysisResult &R) {
  return EdgeCounts{
      R.Graph->parentChildEdgeCount(), R.Graph->flowEdgeCount(),
      R.Graph->size(),
      R.Graph->nodesOfKind(graph::NodeKind::ViewInfl).size()};
}

/// Asserts that two independently computed results describe the same
/// solution: identical edge/node counts, identical per-node value sets
/// (matched structurally by label), identical Table 2 metrics.
inline void expectSameSolution(const analysis::AnalysisResult &A,
                               const analysis::AnalysisResult &B,
                               const std::string &Context) {
  EdgeCounts CA = edgeCounts(A), CB = edgeCounts(B);
  EXPECT_EQ(CA.ParentChild, CB.ParentChild) << Context;
  EXPECT_EQ(CA.Nodes, CB.Nodes) << Context;
  EXPECT_EQ(CA.ViewInfl, CB.ViewInfl) << Context;
  EXPECT_EQ(CA.Flow, CB.Flow) << Context;

  auto FA = fingerprint(A);
  auto FB = fingerprint(B);
  ASSERT_EQ(FA.size(), FB.size()) << Context;
  for (const auto &[Name, Labels] : FA) {
    auto It = FB.find(Name);
    ASSERT_NE(It, FB.end()) << Context << ": node " << Name;
    EXPECT_EQ(Labels, It->second) << Context << ": values at " << Name;
  }

  auto MA = A.metrics();
  auto MB = B.metrics();
  EXPECT_DOUBLE_EQ(MA.AvgReceivers, MB.AvgReceivers) << Context;
  EXPECT_EQ(MA.AvgResults.has_value(), MB.AvgResults.has_value()) << Context;
  if (MA.AvgResults && MB.AvgResults) {
    EXPECT_DOUBLE_EQ(*MA.AvgResults, *MB.AvgResults) << Context;
  }
  if (MA.AvgListeners && MB.AvgListeners) {
    EXPECT_DOUBLE_EQ(*MA.AvgListeners, *MB.AvgListeners) << Context;
  }
}

} // namespace test
} // namespace gator

#endif // GATOR_TESTS_DIFFERENTIALHELPERS_H
