//===- ResourceTable.h - R.layout / R.id integer ids ------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models the auto-generated Android `R` class (Section 2 of the paper):
/// every layout has a unique integer id (a constant field of `R.layout`)
/// and every view id string has a unique integer (a field of `R.id`).
/// The id spaces follow the aapt convention: layout ids live in
/// 0x7f03xxxx and view ids in 0x7f08xxxx.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_LAYOUT_RESOURCETABLE_H
#define GATOR_LAYOUT_RESOURCETABLE_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace gator {
namespace layout {

/// An R.layout or R.id integer constant.
using ResourceId = int32_t;
inline constexpr ResourceId InvalidResourceId = 0;

/// Bidirectional name<->integer tables for layout ids and view ids.
class ResourceTable {
public:
  static constexpr ResourceId LayoutIdBase = 0x7f030000;
  static constexpr ResourceId ViewIdBase = 0x7f080000;

  /// Interns a layout name, returning its stable integer id.
  ResourceId internLayoutId(const std::string &Name);
  /// Interns a view id name, returning its stable integer id.
  ResourceId internViewId(const std::string &Name);

  /// Looks up an already-interned layout name; InvalidResourceId if absent.
  ResourceId lookupLayoutId(const std::string &Name) const;
  /// Looks up an already-interned view id name; InvalidResourceId if absent.
  ResourceId lookupViewId(const std::string &Name) const;

  /// Maps a layout integer back to its name, if it is one.
  std::optional<std::string> layoutName(ResourceId Id) const;
  /// Maps a view-id integer back to its name, if it is one.
  std::optional<std::string> viewIdName(ResourceId Id) const;

  bool isLayoutId(ResourceId Id) const {
    return Id >= LayoutIdBase &&
           Id < LayoutIdBase + static_cast<ResourceId>(LayoutNames.size());
  }
  bool isViewId(ResourceId Id) const {
    return Id >= ViewIdBase &&
           Id < ViewIdBase + static_cast<ResourceId>(ViewIdNames.size());
  }

  const std::vector<std::string> &layoutNames() const { return LayoutNames; }
  const std::vector<std::string> &viewIdNames() const { return ViewIdNames; }

  unsigned layoutCount() const {
    return static_cast<unsigned>(LayoutNames.size());
  }
  unsigned viewIdCount() const {
    return static_cast<unsigned>(ViewIdNames.size());
  }

private:
  std::vector<std::string> LayoutNames;
  std::vector<std::string> ViewIdNames;
  std::unordered_map<std::string, ResourceId> LayoutByName;
  std::unordered_map<std::string, ResourceId> ViewIdByName;
};

} // namespace layout
} // namespace gator

#endif // GATOR_LAYOUT_RESOURCETABLE_H
