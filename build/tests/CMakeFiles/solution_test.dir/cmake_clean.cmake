file(REMOVE_RECURSE
  "CMakeFiles/solution_test.dir/solution_test.cpp.o"
  "CMakeFiles/solution_test.dir/solution_test.cpp.o.d"
  "solution_test"
  "solution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
