
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/Layout.cpp" "src/layout/CMakeFiles/gator_layout.dir/Layout.cpp.o" "gcc" "src/layout/CMakeFiles/gator_layout.dir/Layout.cpp.o.d"
  "/root/repo/src/layout/LayoutWriter.cpp" "src/layout/CMakeFiles/gator_layout.dir/LayoutWriter.cpp.o" "gcc" "src/layout/CMakeFiles/gator_layout.dir/LayoutWriter.cpp.o.d"
  "/root/repo/src/layout/ResourceTable.cpp" "src/layout/CMakeFiles/gator_layout.dir/ResourceTable.cpp.o" "gcc" "src/layout/CMakeFiles/gator_layout.dir/ResourceTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gator_support.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gator_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
