# Empty compiler generated dependencies file for context_refinement_test.
# This may be replaced when dependencies are built.
