//===- SolutionCache.h - Content-addressed analysis cache -------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed caching of whole-app analysis outcomes
/// (docs/INCREMENTAL.md). The key is a 128-bit content hash over the
/// app's inputs — every source unit, layout, and manifest file, plus the
/// canonicalized analysis options — so a warm hit in batch/fleet mode
/// skips parse, build, and solve entirely while merging into
/// byte-identical output at every job count.
///
/// Two tiers:
///  - an in-memory FIFO tier (bounded, mutex-guarded, shared across batch
///    tasks within one process);
///  - an optional on-disk tier (`--cache-dir`): one file per key named
///    `<hex>.gsc`, written atomically (tmp + rename) in a versioned,
///    checksummed binary format ("GSC1"). Corrupt, truncated, or
///    version-skewed entries are *misses, never errors* — the caller
///    falls back to a full solve and the poisoned entry is counted.
///
/// What a cached entry stores is the externally observable outcome of a
/// run: the exit code, the captured stdout/stderr text, the AppStats row,
/// and the raw gator_flowset_size histogram contribution (the only
/// metrics signal recordAppMetrics derives from the Solution itself, so
/// it must be replayed from raw buckets on a hit).
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_SOLUTIONCACHE_H
#define GATOR_ANALYSIS_SOLUTIONCACHE_H

#include "analysis/AppStats.h"
#include "analysis/Options.h"
#include "support/Hash.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gator {
namespace analysis {

/// The externally observable outcome of one app analysis, as cached.
struct CachedAnalysis {
  int ExitCode = 0;
  /// Captured stdout/stderr text of the run (produced under the same
  /// options the key hashes, so replaying it verbatim is sound).
  std::string OutText;
  std::string ErrText;
  /// The Table-1 row plus solver/fidelity telemetry — everything
  /// recordAppMetrics needs except the Solution.
  AppStats Stats;
  /// The Table-2 precision row (Solution::computeMetrics under the keyed
  /// options), so corpus drivers can replay their summary tables without
  /// a Solution.
  Solution::PrecisionMetrics Precision;
  /// Raw gator_flowset_size contribution of this app: bucket counts
  /// (including the overflow slot), sum, and observation count, captured
  /// with captureFlowsetHistogram at store time and folded back with
  /// Histogram::addRaw on a hit.
  std::vector<uint64_t> FlowHistCounts;
  uint64_t FlowHistSum = 0;
  uint64_t FlowHistCount = 0;
};

/// Two-tier content-addressed cache. Thread-safe: batch tasks share one
/// instance. Counters are atomics so recordMetrics can run after a
/// parallel sweep without synchronization.
class SolutionCache {
public:
  /// On-disk format version; bumped on any layout change so stale
  /// artifacts from older binaries read as version-skewed (a miss).
  static constexpr uint32_t FormatVersion = 1;

  enum class Outcome {
    Hit,     ///< found in memory or on disk, checksum verified
    Miss,    ///< no entry under this key
    Corrupt, ///< an entry existed but failed validation; treat as a miss
  };

  /// \p DiskDir empty disables the disk tier. \p MemCapacity bounds the
  /// in-memory tier (FIFO eviction; disk entries are never evicted).
  explicit SolutionCache(std::string DiskDir = std::string(),
                         size_t MemCapacity = 512);

  /// \p Trace, when non-null, records a `cache.lookup` span annotated
  /// with hit/corrupt flags (docs/OBSERVABILITY.md span taxonomy); the
  /// sink must be the caller's thread-confined sink.
  Outcome lookup(const support::Hash128 &Key, CachedAnalysis &Out,
                 support::TraceSink *Trace = nullptr);
  /// \p Trace, when non-null, records a `cache.store` span annotated with
  /// the serialized entry size.
  void store(const support::Hash128 &Key, const CachedAnalysis &Entry,
             support::TraceSink *Trace = nullptr);

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }
  uint64_t corruptEntries() const {
    return Corrupt.load(std::memory_order_relaxed);
  }

  /// Emits gator_cache_hits_total / gator_cache_misses_total /
  /// gator_cache_evictions_total / gator_cache_corrupt_total counters.
  void recordMetrics(support::MetricsRegistry &Metrics) const;

  const std::string &diskDir() const { return Dir; }

  /// The GSC1 artifact codec, exposed for tests: little-endian payload
  /// behind a magic + version + size + FNV-1a checksum header.
  /// deserialize returns false (leaving \p Out partially written but the
  /// caller discarding it) on any truncation, overrun, magic or version
  /// mismatch, or checksum failure.
  static void serialize(const CachedAnalysis &Entry, std::string &Bytes);
  static bool deserialize(std::string_view Bytes, CachedAnalysis &Out);

private:
  std::string Dir;
  size_t Capacity;

  std::mutex Mu;
  /// Hex key -> entry; FIFO order tracked separately for eviction.
  std::unordered_map<std::string, CachedAnalysis> Mem;
  std::deque<std::string> Order;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> Corrupt{0};

  void insertMem(const std::string &Hex, const CachedAnalysis &Entry);
};

/// Hashes every analysis input file under \p Dir — *.alite, *.dexlite,
/// AndroidManifest.xml, and layout *.xml — as (relative path, content)
/// pairs in sorted path order. Relative paths matter (layout names come
/// from file stems); the directory's own location does not, so moving an
/// app tree yields the same key.
support::Hash128 hashAppDir(const std::string &Dir);

/// Canonical hash of the semantically meaningful options: every knob that
/// changes the solution, the output text, or the deterministic budget
/// limits. Deliberately excludes Jobs, Trace, and the wall-clock /
/// cancellation budget fields — those change scheduling, not results.
support::Hash128 hashAnalysisOptions(const AnalysisOptions &Options);

/// Combines an input-content hash (hashAppDir, corpus::hashAppSpec, ...)
/// with an options hash into one cache key.
support::Hash128 combineCacheKey(const support::Hash128 &Inputs,
                                 const support::Hash128 &OptionsHash);

/// The cache key for analyzing the app at \p Dir under \p Options.
support::Hash128 cacheKeyFor(const std::string &Dir,
                             const AnalysisOptions &Options);

/// False when the run's outcome can depend on timing — a wall-clock
/// deadline or an external cancel flag can truncate the solve at an
/// arbitrary point, and a truncated solution must never be served as the
/// canonical result for its inputs.
bool cacheEligible(const AnalysisOptions &Options);

/// Captures the app's raw gator_flowset_size contribution (same bounds as
/// recordAppMetrics uses) for storage in a CachedAnalysis.
void captureFlowsetHistogram(const Solution &Sol,
                             std::vector<uint64_t> &Counts, uint64_t &Sum,
                             uint64_t &Count);

/// The warm-hit replacement for recordAppMetrics(Metrics, Stats, Sol):
/// records the cached AppStats row and folds the raw flowset histogram
/// back in. A warm batch merges into the same metrics document as a cold
/// one.
void replayAppMetrics(support::MetricsRegistry &Metrics,
                      const CachedAnalysis &Entry);

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_SOLUTIONCACHE_H
