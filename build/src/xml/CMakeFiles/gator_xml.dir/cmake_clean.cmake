file(REMOVE_RECURSE
  "CMakeFiles/gator_xml.dir/Xml.cpp.o"
  "CMakeFiles/gator_xml.dir/Xml.cpp.o.d"
  "libgator_xml.a"
  "libgator_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gator_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
