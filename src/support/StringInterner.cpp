//===- StringInterner.cpp -------------------------------------*- C++ -*-===//

#include "support/StringInterner.h"

using namespace gator;

Symbol StringInterner::intern(std::string_view Text) {
  // Grow at 3/4 load so linear probes stay short.
  if (Slots.empty() || (Spellings.size() + 1) * 4 > Slots.size() * 3)
    grow();

  uint64_t Hash = hashText(Text);
  size_t Mask = Slots.size() - 1;
  size_t I = slotIndex(Hash, Mask);
  while (true) {
    uint32_t S = Slots[I];
    if (S == EmptySlot)
      break;
    if (Hashes[S] == Hash && textOf(S) == Text)
      return Symbol(S);
    I = (I + 1) & Mask;
  }

  uint32_t Index = static_cast<uint32_t>(Spellings.size());
  Spellings.push_back(
      {Chars.copyString(Text), static_cast<uint32_t>(Text.size())});
  Hashes.push_back(Hash);
  Slots[I] = Index;
  return Symbol(Index);
}

void StringInterner::grow() {
  size_t NewSize = Slots.empty() ? 64 : Slots.size() * 2;
  Slots.assign(NewSize, EmptySlot);
  size_t Mask = NewSize - 1;
  // Cached hashes make the rehash a pure integer scatter.
  for (uint32_t S = 0; S < Spellings.size(); ++S) {
    size_t I = slotIndex(Hashes[S], Mask);
    while (Slots[I] != EmptySlot)
      I = (I + 1) & Mask;
    Slots[I] = S;
  }
}
