
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/support_test.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/support_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/gator_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gator_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gator_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/guimodel/CMakeFiles/gator_guimodel.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/gator_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/gator_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/gator_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gator_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/gator_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/android/CMakeFiles/gator_android.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/gator_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/gator_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gator_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
