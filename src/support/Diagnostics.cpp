//===- Diagnostics.cpp ----------------------------------------*- C++ -*-===//

#include "support/Diagnostics.h"

#include "support/Json.h"

using namespace gator;

const char *gator::severityLabel(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "unknown";
}

void DiagnosticEngine::report(DiagSeverity Severity, SourceLocation Loc,
                              std::string Message) {
  if (Severity == DiagSeverity::Error)
    ++ErrorCount;
  else if (Severity == DiagSeverity::Warning)
    ++WarningCount;
  Diags.push_back(Diagnostic{Severity, std::move(Loc), std::move(Message)});
}

void DiagnosticEngine::print(std::ostream &OS) const {
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      OS << D.Loc << ": ";
    OS << severityLabel(D.Severity) << ": " << D.Message << '\n';
  }
}

void DiagnosticEngine::printJson(std::ostream &OS) const {
  JsonWriter W(OS);
  W.beginObject();
  W.key("diagnostics");
  W.beginArray();
  for (const Diagnostic &D : Diags) {
    W.beginObject();
    W.field("severity", severityLabel(D.Severity));
    if (D.Loc.isValid()) {
      W.field("file", D.Loc.file());
      W.field("line", D.Loc.line());
      W.field("column", D.Loc.column());
    }
    W.field("message", D.Message);
    W.endObject();
  }
  W.endArray();
  W.field("errors", ErrorCount);
  W.field("warnings", WarningCount);
  W.endObject();
  OS << '\n';
}

void DiagnosticEngine::clear() {
  Diags.clear();
  ErrorCount = 0;
  WarningCount = 0;
  CheckFailures = 0;
}
