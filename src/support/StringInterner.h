//===- StringInterner.h - Unique'd strings ----------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A string interner producing small integer Symbols. Class names, method
/// names, field names, and resource names are interned once so the IR and
/// the constraint graph can compare and hash them as integers.
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_SUPPORT_STRINGINTERNER_H
#define GATOR_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace gator {

/// An interned string handle. Symbols from the same interner compare equal
/// exactly when their spellings are equal. The default-constructed Symbol is
/// the invalid sentinel.
class Symbol {
public:
  Symbol() = default;

  bool isValid() const { return Index != ~0u; }
  uint32_t rawIndex() const { return Index; }

  bool operator==(const Symbol &Other) const { return Index == Other.Index; }
  bool operator!=(const Symbol &Other) const { return Index != Other.Index; }
  bool operator<(const Symbol &Other) const { return Index < Other.Index; }

private:
  friend class StringInterner;
  explicit Symbol(uint32_t Index) : Index(Index) {}

  uint32_t Index = ~0u;
};

/// Owns the interned spellings and hands out Symbols.
class StringInterner {
public:
  /// Interns \p Text, returning the existing Symbol if already present.
  Symbol intern(std::string_view Text);

  /// Returns the Symbol for \p Text if interned, or the invalid Symbol.
  Symbol lookup(std::string_view Text) const;

  /// Returns the spelling of a valid \p Sym.
  const std::string &text(Symbol Sym) const {
    assert(Sym.isValid() && Sym.rawIndex() < Spellings.size() &&
           "invalid symbol");
    return *Spellings[Sym.rawIndex()];
  }

  size_t size() const { return Spellings.size(); }

private:
  // Spellings are heap-allocated so the string_view keys in Indices stay
  // valid while the vector grows.
  std::vector<std::unique_ptr<std::string>> Spellings;
  std::unordered_map<std::string_view, uint32_t> Indices;
};

} // namespace gator

namespace std {
template <> struct hash<gator::Symbol> {
  size_t operator()(const gator::Symbol &Sym) const {
    return std::hash<uint32_t>()(Sym.rawIndex());
  }
};
} // namespace std

#endif // GATOR_SUPPORT_STRINGINTERNER_H
