//===- android_test.cpp - Platform model unit tests -------------*- C++ -*-===//

#include "android/AndroidModel.h"
#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

using namespace gator;
using namespace gator::android;
using namespace gator::ir;

namespace {

/// Installs the platform and a small app; binds the model.
class AndroidModelTest : public ::testing::Test {
protected:
  void SetUp() override {
    AM.install(P);
    ProgramBuilder B(P, Diags);
    B.makeClass("MyActivity").extends(names::Activity);
    B.makeClass("MyDialog").extends(names::Dialog);
    B.makeClass("MyView").extends(names::View);
    B.makeClass("MyListener").implements("android.view.View.OnClickListener");
    B.makeClass("Plain");
    ASSERT_TRUE(B.finish());
    ASSERT_TRUE(AM.bind(P, Diags));
  }

  /// Builds an invoke statement in a scratch method for classification.
  std::optional<OpSpec> classify(const std::string &RecvType,
                                 const std::string &Method,
                                 const std::vector<std::string> &ArgTypes) {
    ClassDecl *Scratch = P.findClass("Scratch");
    if (!Scratch)
      Scratch = P.addClass("Scratch");
    static int Counter = 0;
    MethodDecl *M =
        Scratch->addMethod("scratch" + std::to_string(Counter++), "void");
    VarId Base = M->addLocal("base", RecvType);
    Stmt S;
    S.Kind = StmtKind::Invoke;
    S.Base = Base;
    S.MethodName = Method;
    for (size_t I = 0; I < ArgTypes.size(); ++I)
      S.Args.push_back(M->addLocal("a" + std::to_string(I), ArgTypes[I]));
    return AM.classifyInvoke(*M, S);
  }

  Program P;
  DiagnosticEngine Diags;
  AndroidModel AM;
};

TEST_F(AndroidModelTest, InstallIsIdempotent) {
  size_t Before = P.classes().size();
  AM.install(P);
  EXPECT_EQ(P.classes().size(), Before);
}

TEST_F(AndroidModelTest, ClassCategories) {
  EXPECT_TRUE(AM.isActivityClass(P.findClass("MyActivity")));
  EXPECT_FALSE(AM.isActivityClass(P.findClass("MyView")));
  EXPECT_TRUE(AM.isWindowClass(P.findClass("MyActivity")));
  EXPECT_TRUE(AM.isWindowClass(P.findClass("MyDialog")));
  EXPECT_FALSE(AM.isWindowClass(P.findClass("MyView")));
  EXPECT_TRUE(AM.isViewClass(P.findClass("MyView")));
  EXPECT_TRUE(AM.isViewClass(P.findClass("android.widget.Button")));
  EXPECT_TRUE(AM.isViewGroupClass(P.findClass("android.widget.ViewFlipper")));
  EXPECT_FALSE(AM.isViewGroupClass(P.findClass("android.widget.TextView")));
  EXPECT_TRUE(AM.isListenerClass(P.findClass("MyListener")));
  EXPECT_FALSE(AM.isListenerClass(P.findClass("Plain")));
}

TEST_F(AndroidModelTest, AppActivityClassesExcludePlatform) {
  auto Acts = AM.appActivityClasses();
  ASSERT_EQ(Acts.size(), 1u);
  EXPECT_EQ(Acts[0]->name(), "MyActivity");
}

TEST_F(AndroidModelTest, ClassifySetContentViewByArgType) {
  auto IdForm = classify("MyActivity", "setContentView", {"int"});
  ASSERT_TRUE(IdForm.has_value());
  EXPECT_EQ(IdForm->Kind, OpKind::Inflate2);

  auto ViewForm = classify("MyActivity", "setContentView",
                           {names::View});
  ASSERT_TRUE(ViewForm.has_value());
  EXPECT_EQ(ViewForm->Kind, OpKind::AddView1);

  // Dialogs support the same operations.
  auto DialogForm = classify("MyDialog", "setContentView", {"int"});
  ASSERT_TRUE(DialogForm.has_value());
  EXPECT_EQ(DialogForm->Kind, OpKind::Inflate2);
}

TEST_F(AndroidModelTest, ClassifyInflate) {
  auto OneArg = classify(names::LayoutInflater, "inflate", {"int"});
  ASSERT_TRUE(OneArg.has_value());
  EXPECT_EQ(OneArg->Kind, OpKind::Inflate1);
  EXPECT_EQ(OneArg->AttachParentArgIndex, -1);

  auto TwoArg = classify(names::LayoutInflater, "inflate",
                         {"int", names::ViewGroup});
  ASSERT_TRUE(TwoArg.has_value());
  EXPECT_EQ(TwoArg->Kind, OpKind::Inflate1);
  EXPECT_EQ(TwoArg->AttachParentArgIndex, 1);
}

TEST_F(AndroidModelTest, ClassifyFindView) {
  auto OnView = classify("MyView", "findViewById", {"int"});
  ASSERT_TRUE(OnView.has_value());
  EXPECT_EQ(OnView->Kind, OpKind::FindView1);

  auto OnActivity = classify("MyActivity", "findViewById", {"int"});
  ASSERT_TRUE(OnActivity.has_value());
  EXPECT_EQ(OnActivity->Kind, OpKind::FindView2);

  auto FindFocus = classify("MyView", "findFocus", {});
  ASSERT_TRUE(FindFocus.has_value());
  EXPECT_EQ(FindFocus->Kind, OpKind::FindView3);
  EXPECT_FALSE(FindFocus->ChildOnly);

  auto Current = classify("android.widget.ViewFlipper", "getCurrentView", {});
  ASSERT_TRUE(Current.has_value());
  EXPECT_EQ(Current->Kind, OpKind::FindView3);
  EXPECT_TRUE(Current->ChildOnly);

  auto ChildAt = classify("android.widget.LinearLayout", "getChildAt",
                          {"int"});
  ASSERT_TRUE(ChildAt.has_value());
  EXPECT_TRUE(ChildAt->ChildOnly);
}

TEST_F(AndroidModelTest, ClassifyAddViewSetIdSetListener) {
  auto Add = classify("android.widget.LinearLayout", "addView",
                      {names::View});
  ASSERT_TRUE(Add.has_value());
  EXPECT_EQ(Add->Kind, OpKind::AddView2);

  auto SetId = classify("MyView", "setId", {"int"});
  ASSERT_TRUE(SetId.has_value());
  EXPECT_EQ(SetId->Kind, OpKind::SetId);

  auto SetL = classify("MyView", "setOnClickListener", {"MyListener"});
  ASSERT_TRUE(SetL.has_value());
  EXPECT_EQ(SetL->Kind, OpKind::SetListener);
  ASSERT_NE(SetL->Listener, nullptr);
  EXPECT_EQ(SetL->Listener->Event, EventKind::Click);
  EXPECT_EQ(SetL->Listener->InterfaceName,
            "android.view.View.OnClickListener");
}

TEST_F(AndroidModelTest, ClassifyIntentOps) {
  auto Start = classify("MyActivity", "startActivity", {names::Intent});
  ASSERT_TRUE(Start.has_value());
  EXPECT_EQ(Start->Kind, OpKind::StartActivity);

  auto SetClass = classify(names::Intent, "setClass",
                           {names::Context, names::ClassClass});
  ASSERT_TRUE(SetClass.has_value());
  EXPECT_EQ(SetClass->Kind, OpKind::SetIntentClass);
}

TEST_F(AndroidModelTest, OrdinaryCallsNotClassified) {
  EXPECT_FALSE(classify("Plain", "doWork", {}).has_value());
  EXPECT_FALSE(classify("MyView", "randomMethod", {"int"}).has_value());
  // setContentView with two args is not an Android operation we model.
  EXPECT_FALSE(
      classify("MyActivity", "setContentView", {"int", "int"}).has_value());
}

TEST_F(AndroidModelTest, LifecycleCallbackNames) {
  EXPECT_TRUE(AndroidModel::isLifecycleCallbackName("onCreate"));
  EXPECT_TRUE(AndroidModel::isLifecycleCallbackName("onBackPressed"));
  EXPECT_TRUE(AndroidModel::isLifecycleCallbackName("onWeirdCustomThing"));
  EXPECT_FALSE(AndroidModel::isLifecycleCallbackName("once")); // lowercase
  EXPECT_FALSE(AndroidModel::isLifecycleCallbackName("create"));
  EXPECT_FALSE(AndroidModel::isLifecycleCallbackName("on"));
}

TEST_F(AndroidModelTest, ListenerSpecsComplete) {
  // Every registered spec has an installed interface with its handlers.
  for (const ListenerSpec &Spec : AM.listenerSpecs()) {
    const ClassDecl *Iface = P.findClass(Spec.InterfaceName);
    ASSERT_NE(Iface, nullptr) << Spec.InterfaceName;
    EXPECT_TRUE(Iface->isInterface());
    for (const HandlerSig &Sig : Spec.Handlers)
      EXPECT_NE(Iface->findOwnMethod(Sig.MethodName, Sig.Arity), nullptr)
          << Spec.InterfaceName << "." << Sig.MethodName;
  }
  EXPECT_GE(AM.listenerSpecs().size(), 9u);
}

TEST_F(AndroidModelTest, ListenerSpecsOfWalksSupertypes) {
  ProgramBuilder B(P, Diags);
  B.makeClass("SubListener").extends("MyListener");
  ASSERT_TRUE(P.resolve(Diags));
  ASSERT_TRUE(AM.bind(P, Diags));
  auto Specs = AM.listenerSpecsOf(P.findClass("SubListener"));
  ASSERT_EQ(Specs.size(), 1u);
  EXPECT_EQ(Specs[0]->Event, EventKind::Click);
}

TEST_F(AndroidModelTest, ResolveLayoutClassName) {
  EXPECT_EQ(AM.resolveLayoutClassName("Button"),
            P.findClass("android.widget.Button"));
  EXPECT_EQ(AM.resolveLayoutClassName("View"),
            P.findClass("android.view.View"));
  EXPECT_EQ(AM.resolveLayoutClassName("WebView"),
            P.findClass("android.webkit.WebView"));
  EXPECT_EQ(AM.resolveLayoutClassName("MyView"), P.findClass("MyView"));
  EXPECT_EQ(AM.resolveLayoutClassName("NoSuchWidget"), nullptr);
}

TEST_F(AndroidModelTest, OpAndEventNames) {
  EXPECT_STREQ(opKindName(OpKind::Inflate1), "Inflate1");
  EXPECT_STREQ(opKindName(OpKind::SetListener), "SetListener");
  EXPECT_STREQ(eventKindName(EventKind::Click), "click");
  EXPECT_STREQ(eventKindName(EventKind::ItemClick), "item-click");
}

} // namespace
