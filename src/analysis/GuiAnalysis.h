//===- GuiAnalysis.h - Analysis facade --------------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the GUI reference analysis: build the
/// constraint graph from an ALite program + layouts, run the fixed point,
/// and return the solution with timing statistics.
///
/// Typical use:
/// \code
///   ir::Program P;
///   android::AndroidModel AM;
///   AM.install(P);
///   ... parse or build application classes, read layouts ...
///   P.resolve(Diags);
///   AM.bind(P, Diags);
///   auto Result = analysis::GuiAnalysis::run(P, Layouts, AM, {}, Diags);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef GATOR_ANALYSIS_GUIANALYSIS_H
#define GATOR_ANALYSIS_GUIANALYSIS_H

#include "analysis/Options.h"
#include "analysis/Provenance.h"
#include "analysis/Solution.h"
#include "analysis/Solver.h"
#include "android/AndroidModel.h"
#include "graph/ConstraintGraph.h"
#include "layout/Layout.h"

#include <memory>

namespace gator {
namespace analysis {

/// Everything one analysis run produces.
struct AnalysisResult {
  std::unique_ptr<graph::ConstraintGraph> Graph;
  std::unique_ptr<Solution> Sol;
  SolverStats Stats;
  double BuildSeconds = 0.0;
  double SolveSeconds = 0.0;
  AnalysisOptions Options;

  /// Fact derivations (docs/OBSERVABILITY.md); non-null only when the run
  /// was configured with RecordProvenance. Feeds `gator_cli --explain`.
  std::unique_ptr<ProvenanceRecorder> Provenance;

  /// Table 2 metrics under the options this run used.
  Solution::PrecisionMetrics metrics() const {
    return Sol->computeMetrics(Options.TrackViewIds, Options.TrackHierarchy,
                               Options.FindView3ChildOnly,
                               Options.UnknownFanoutBudget);
  }
};

class GuiAnalysis {
public:
  /// Runs the full pipeline. \p P must be resolved and \p AM bound to it.
  /// Fail-soft (docs/ROBUSTNESS.md): always returns a result; build errors
  /// or recoverable-invariant failures mark the solution DegradedInput and
  /// budget exhaustion marks it TruncatedBudget.
  static std::unique_ptr<AnalysisResult>
  run(const ir::Program &P, layout::LayoutRegistry &Layouts,
      const android::AndroidModel &AM, const AnalysisOptions &Options,
      DiagnosticEngine &Diags);
};

} // namespace analysis
} // namespace gator

#endif // GATOR_ANALYSIS_GUIANALYSIS_H
