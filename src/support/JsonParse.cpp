//===- JsonParse.cpp - Minimal JSON DOM parser ------------------*- C++ -*-===//
//
// Part of gator-cpp, a reproduction of "Static Reference Analysis for GUI
// Objects in Android Software" (Rountev and Yan, CGO 2014).
//
//===----------------------------------------------------------------------===//

#include "support/JsonParse.h"

#include <cmath>
#include <cstdlib>

namespace gator {
namespace support {

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &M : Obj)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

double JsonValue::numberOr(std::string_view Key, double Default) const {
  const JsonValue *V = find(Key);
  return V && V->isNumber() ? V->asNumber() : Default;
}

uint64_t JsonValue::u64Or(std::string_view Key, uint64_t Default) const {
  const JsonValue *V = find(Key);
  return V && V->isNumber() ? V->asU64() : Default;
}

bool JsonValue::boolOr(std::string_view Key, bool Default) const {
  const JsonValue *V = find(Key);
  return V && V->isBool() ? V->asBool() : Default;
}

std::string JsonValue::stringOr(std::string_view Key,
                                std::string Default) const {
  const JsonValue *V = find(Key);
  return V && V->isString() ? V->asString() : Default;
}

JsonValue JsonValue::makeBool(bool V) {
  JsonValue J;
  J.K = Kind::Bool;
  J.B = V;
  return J;
}

JsonValue JsonValue::makeNumber(double V) {
  JsonValue J;
  J.K = Kind::Number;
  J.Num = V;
  return J;
}

JsonValue JsonValue::makeString(std::string V) {
  JsonValue J;
  J.K = Kind::String;
  J.Str = std::move(V);
  return J;
}

JsonValue JsonValue::makeArray(std::vector<JsonValue> V) {
  JsonValue J;
  J.K = Kind::Array;
  J.Arr = std::move(V);
  return J;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> V) {
  JsonValue J;
  J.K = Kind::Object;
  J.Obj = std::move(V);
  return J;
}

namespace {

/// Recursive-descent parser over a string_view. Depth-capped so hostile
/// input cannot blow the stack (ledger documents nest three levels).
class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool run(JsonValue &Out) {
    skipWs();
    if (!parseValue(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return true;
  }

private:
  static constexpr int MaxDepth = 64;

  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;

  bool fail(const char *Why) {
    Error = "offset " + std::to_string(Pos) + ": " + Why;
    return false;
  }

  bool eof() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWs() {
    while (!eof()) {
      char C = Text[Pos];
      if (C == ' ' || C == '\t' || C == '\n' || C == '\r')
        ++Pos;
      else
        break;
    }
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return false;
    Pos += Word.size();
    return true;
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (eof())
      return fail("unexpected end of input");
    switch (peek()) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::makeString(std::move(S));
      return true;
    }
    case 't':
      if (!literal("true"))
        return fail("bad literal");
      Out = JsonValue::makeBool(true);
      return true;
    case 'f':
      if (!literal("false"))
        return fail("bad literal");
      Out = JsonValue::makeBool(false);
      return true;
    case 'n':
      if (!literal("null"))
        return fail("bad literal");
      Out = JsonValue::makeNull();
      return true;
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, int Depth) {
    ++Pos; // '{'
    std::vector<std::pair<std::string, JsonValue>> Members;
    skipWs();
    if (!eof() && peek() == '}') {
      ++Pos;
      Out = JsonValue::makeObject(std::move(Members));
      return true;
    }
    while (true) {
      skipWs();
      if (eof() || peek() != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (eof() || peek() != ':')
        return fail("expected ':' after key");
      ++Pos;
      skipWs();
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Members.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (eof())
        return fail("unterminated object");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        Out = JsonValue::makeObject(std::move(Members));
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out, int Depth) {
    ++Pos; // '['
    std::vector<JsonValue> Items;
    skipWs();
    if (!eof() && peek() == ']') {
      ++Pos;
      Out = JsonValue::makeArray(std::move(Items));
      return true;
    }
    while (true) {
      skipWs();
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Items.push_back(std::move(V));
      skipWs();
      if (eof())
        return fail("unterminated array");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        Out = JsonValue::makeArray(std::move(Items));
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (true) {
      if (eof())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (eof())
          return fail("unterminated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return fail("truncated \\u escape");
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point. The writer only ever emits
          // \u00xx control escapes; surrogate pairs decode as two
          // replacement-free code units, good enough for diagnostics.
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
        }
        continue;
      }
      Out += C;
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (!eof() && peek() == '-')
      ++Pos;
    bool SawDigit = false;
    while (!eof() && peek() >= '0' && peek() <= '9') {
      ++Pos;
      SawDigit = true;
    }
    if (!eof() && peek() == '.') {
      ++Pos;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++Pos;
        SawDigit = true;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!eof() && (peek() == '+' || peek() == '-'))
        ++Pos;
      while (!eof() && peek() >= '0' && peek() <= '9')
        ++Pos;
    }
    if (!SawDigit) {
      Pos = Start;
      return fail("expected a value");
    }
    std::string Token(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double V = std::strtod(Token.c_str(), &End);
    if (!End || *End != '\0' || !std::isfinite(V)) {
      Pos = Start;
      return fail("malformed number");
    }
    Out = JsonValue::makeNumber(V);
    return true;
  }
};

} // namespace

bool JsonValue::parse(std::string_view Text, JsonValue &Out,
                      std::string &Error) {
  Error.clear();
  Parser P(Text, Error);
  return P.run(Out);
}

} // namespace support
} // namespace gator
