//===- Solver.cpp - Fixed-point constraint solver ---------------*- C++ -*-===//

#include "analysis/Solver.h"

#include "support/Check.h"
#include "support/Trace.h"

#include <algorithm>

using namespace gator;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::android;
using namespace gator::ir;

void Solver::growSets() {
  // Grow with 50% slack: the graph keeps growing one node at a time while
  // inflation mints view subtrees, and FlowSet/vector elements are
  // expensive to move, so over-reserving once beats reallocating per
  // doubling.
  size_t N = G.size();
  auto &Sets = Sol.flowsToSets();
  if (Sets.size() < N) {
    if (Sets.capacity() < N)
      Sets.reserve(N + N / 2);
    Sets.resize(N);
  }
  if (InVarWorklist.size() < N)
    InVarWorklist.resize(N, false);
  if (OpUses.size() != N) {
    if (OpUses.capacity() < N)
      OpUses.reserve(N + N / 2);
    OpUses.resize(N);
  }
}

bool Solver::typeCompatible(NodeId N, NodeId Value) const {
  if (!Options.DeclaredTypeFilter)
    return true;
  const Node &Target = G.node(N);
  const ir::Program &P = AM.program();

  const ClassDecl *DeclType = nullptr;
  if (Target.Kind == NodeKind::Var) {
    const std::string &TypeName = Target.Method->var(Target.Var).TypeName;
    if (TypeName.empty() || ir::isPrimitiveTypeName(TypeName))
      return true;
    DeclType = P.findClass(TypeName);
  } else if (Target.Kind == NodeKind::Field) {
    const std::string &TypeName = Target.Field->typeName();
    if (TypeName.empty() || ir::isPrimitiveTypeName(TypeName))
      return true;
    DeclType = P.findClass(TypeName);
  } else {
    return true;
  }
  if (!DeclType || DeclType->name() == ir::ObjectClassName)
    return true;

  const Node &Val = G.node(Value);
  const ClassDecl *ValClass = Val.Klass;
  switch (Val.Kind) {
  case NodeKind::Alloc:
  case NodeKind::ViewAlloc:
  case NodeKind::ViewInfl:
  case NodeKind::Activity:
    break; // class-bearing values are filtered
  default:
    return true; // ids / class constants are untyped integers
  }
  if (!ValClass)
    return true;
  // Cast compatibility: a value of class C can be observed through a
  // location of declared type T when C <: T (upcast/exact) or T <: C
  // (checked downcast could succeed).
  return P.isSubtypeOf(ValClass, DeclType) ||
         P.isSubtypeOf(DeclType, ValClass);
}

void Solver::addValue(NodeId N, NodeId Value) {
  if (N == InvalidNode)
    return;
  ++Stats.ValuesPushed;
  if (!typeCompatible(N, Value))
    return;
  ensureSets();
  auto &Sets = Sol.flowsToSets();
  if (!Sets[N].insert(Sol.setArena(), Value)) {
    ++Stats.DedupHits;
    return;
  }
  // A non-simulated insert while a snapshot is live diverges N's set from
  // what classification saw; pending verdicts for N are now stale
  // (docs/PARALLEL.md). Dead-cheap when no snapshot is active.
  if (SnapRemaining && N < RoundDirtyEpoch.size())
    RoundDirtyEpoch[N] = SnapEpoch;
  if (Prov)
    Prov->recordFlow(N, Value, PRule, PPrem[0], PPrem[1], PPrem[2]);
  if (!InVarWorklist[N]) {
    InVarWorklist[N] = true;
    VarWorklist.push_back(N);
    if (VarWorklist.size() > Stats.PeakVarWorklist)
      Stats.PeakVarWorklist = VarWorklist.size();
  }
  for (uint32_t OpIndex : OpUses[N])
    enqueueOp(OpIndex);
}

void Solver::addOpUse(NodeId N, size_t OpIndex) {
  ensureSets();
  auto &Uses = OpUses[N];
  uint32_t Idx = static_cast<uint32_t>(OpIndex);
  if (std::find(Uses.begin(), Uses.end(), Idx) == Uses.end())
    Uses.push_back(Idx);
}

void Solver::enqueueOp(size_t OpIndex) {
  if (InOpWorklist[OpIndex])
    return;
  InOpWorklist[OpIndex] = true;
  OpWorklist.push_back(OpIndex);
  if (OpWorklist.size() > Stats.PeakOpWorklist)
    Stats.PeakOpWorklist = OpWorklist.size();
}

void Solver::noteStructureChange() {
  StructureDirty = true;
  // Delta mode defers the structure-sensitive re-fires to the next
  // quiescent round (solve()); monotonicity makes the batched schedule
  // reach the same least fixed point. The naive reference mode keeps the
  // historical eager re-enqueue per structure edge.
  if (!Options.DeltaPropagation)
    for (size_t OpIndex : StructureSensitiveOps)
      enqueueOp(OpIndex);
}

void Solver::sweepXmlOnClickHandlers() {
  if (!Options.ModelXmlOnClickHandlers)
    return;
  for (NodeId Holder : G.rootHolders()) {
    const ClassDecl *HolderClass = G.node(Holder).Klass;
    for (NodeId Root : G.roots(Holder)) {
      for (NodeId V : G.descendantsOf(Root)) {
        const Node &ViewNode = G.node(V);
        if (ViewNode.Kind != NodeKind::ViewInfl || !ViewNode.LNode ||
            !ViewNode.LNode->hasOnClickHandler())
          continue;
        if (!G.addListenerEdge(V, Holder))
          continue; // this (view, window) pair is already wired
        provEdge(FactKind::Listener, V, Holder, DerivRule::XmlOnClick,
                 provFlow(V, V));
        if (!HolderClass || HolderClass->isPlatform())
          continue;
        const MethodDecl *Handler = hier::ClassHierarchy::dispatch(
            HolderClass, ViewNode.LNode->onClickHandlerName(), 1);
        if (!Handler || Handler->owner()->isPlatform()) {
          Diags.warning(ViewNode.LNode->loc(),
                        "android:onClick handler '" +
                            ViewNode.LNode->onClickHandlerName() +
                            "' not found on class '" +
                            (HolderClass ? HolderClass->name()
                                         : std::string("?")) +
                            "'");
          continue;
        }
        NodeId ThisNode = G.getVarNode(Handler, Handler->thisVar());
        solverAddFlowEdge(Holder, ThisNode);
        if (Prov) {
          FactId LFact = Prov->edgeFact(FactKind::Listener, V, Holder);
          provLink(Holder, ThisNode, DerivRule::XmlOnClick, LFact);
          provCtx(DerivRule::XmlOnClick, LFact);
        }
        addValue(ThisNode, Holder);
        NodeId ParamNode = G.getVarNode(Handler, Handler->paramVar(0));
        addValue(ParamNode, V);
      }
    }
  }
}

void Solver::seedValueNodes() {
  ensureSets();
  provCtx(DerivRule::Seed);
  for (NodeId Id = 0; Id < G.size(); ++Id) {
    const Node &N = G.node(Id);
    // Retired nodes are orphans of an edit-scale retraction
    // (docs/INCREMENTAL.md); re-seeding one would resurrect a value whose
    // minting site no longer exists.
    if (!isValueNodeKind(N.Kind) || N.Retired)
      continue;
    if (Prov)
      provCtx(N.Kind == NodeKind::UnknownView || N.Kind == NodeKind::UnknownId
                  ? DerivRule::UnknownSource
                  : DerivRule::Seed);
    addValue(Id, Id);
  }
}

void Solver::registerOpUses() {
  auto &Ops = Sol.opSites();
  // A Solver may be driven through several solve() calls; the op table
  // only ever grows (GraphBuilder appends, the solver never reorders), so
  // index-derived registrations are rebuilt here while the op-index-keyed
  // memos (InflatedAt, FragmentWired) stay valid and MUST survive —
  // clearing them would re-mint ViewInfl trees / re-wire fragment
  // callbacks on every re-solve.
  OpUses.clear();
  StructureSensitiveOps.clear();
  OpWorklist.clear();
  InOpWorklist.assign(Ops.size(), false);
  ensureSets();
  for (size_t I = 0; I < Ops.size(); ++I) {
    const OpSite &Op = Ops[I];
    if (Op.Dead)
      continue; // tombstoned by an edit-scale re-analysis; slot kept so
                // op indices stay stable memo keys (docs/INCREMENTAL.md)
    for (NodeId Role : {Op.Recv, Op.IdArg, Op.ValArg, Op.AttachParent})
      if (Role != InvalidNode)
        addOpUse(Role, I);
    switch (Op.Spec.Kind) {
    case OpKind::FindView1:
    case OpKind::FindView2:
    case OpKind::FindView3:
    case OpKind::FragmentAdd: // containers may appear via later inflation
      StructureSensitiveOps.push_back(I);
      break;
    default:
      break;
    }
    enqueueOp(I);
  }
}

void Solver::propagate(NodeId N) {
  ++Stats.Propagations;
  auto &Sets = Sol.flowsToSets();
  // Copy the values to push into the reusable scratch: addValue may
  // resize Sets and insert into the very set being walked.
  if (Options.DeltaPropagation) {
    // Difference propagation: only the suffix that arrived since this
    // node's last visit. Committed values were already pushed to every
    // flow successor (edges added mid-solve always source from singleton
    // value nodes whose one value the adding rule seeds by hand — see
    // docs/DELTA_SOLVER.md, "mid-solve edges").
    FlowSet &Set = Sets[N];
    if (!Set.hasDelta())
      return; // spurious wakeup: delta drained by an earlier visit
    PropScratch.assign(Set.begin() + Set.deltaBegin(), Set.end());
    Set.commit(Set.size());
    ++Stats.DeltaCommits;
  } else {
    PropScratch.assign(Sets[N].begin(), Sets[N].end());
  }
  for (NodeId Succ : G.flowSuccessors(N)) {
    if (G.node(Succ).Kind == NodeKind::Op)
      continue; // operation rules read role variables directly
    for (NodeId V : PropScratch) {
      if (Prov)
        provCtx(DerivRule::FlowEdge, Prov->flowFact(N, V));
      addValue(Succ, V);
    }
  }
}

//===----------------------------------------------------------------------===//
// Parallel intra-solve engine (docs/PARALLEL.md, "Inside one solve")
//===----------------------------------------------------------------------===//

void Solver::ensureSolvePool() {
  if (SolvePool && SolvePool->workerCount() != SolveWorkers)
    SolvePool.reset(); // SolveJobs changed between solve() calls
  if (!SolvePool)
    SolvePool.reset(new support::ThreadPool(SolveWorkers));
}

bool Solver::solverAddFlowEdge(NodeId From, NodeId To) {
  bool Added = G.addFlowEdge(From, To);
  if (Added && Scc && Scc->built())
    Scc->noteEdge(From, To);
  return Added;
}

void Solver::simulateTarget(NodeId Target) {
  // Runs on a pool worker. Everything read here is frozen: the serial
  // thread blocks at the wave barrier, so no set, adjacency list, or
  // entry table mutates. Writes land in Verdicts slots owned by this
  // target's pushes alone.
  const FlowSet &Base = Sol.flowsToSets()[Target];
  size_t Begin = ClsStart[Target];
  size_t End = Begin + ClsCount[Target];

  // Predicted-new values: the target's state beyond Base, evolved in push
  // order exactly as the replay will evolve it. Small targets linear-scan
  // a vector; a hash set takes over past a threshold.
  std::vector<NodeId> Pred;
  std::unordered_set<NodeId> PredBig;
  constexpr size_t PredSmallLimit = 48;

  for (size_t E = Begin; E < End; ++E) {
    NodeId V = ClsEntries[E].Val;
    bool Dup = Base.contains(V);
    if (!Dup) {
      if (!PredBig.empty() || Pred.size() > PredSmallLimit) {
        if (PredBig.empty())
          PredBig.insert(Pred.begin(), Pred.end());
        Dup = !PredBig.insert(V).second;
      } else {
        Dup = std::find(Pred.begin(), Pred.end(), V) != Pred.end();
        if (!Dup)
          Pred.push_back(V);
      }
    }
    Verdicts[ClsEntries[E].Pos] = Dup ? 1 : 0;
  }
}

void Solver::classifyRound() {
  ensureSets();
  auto &Sets = Sol.flowsToSets();
  size_t N = G.size();
  if (++SnapEpoch == 0) { // epoch wrapped: stale stamps must not match
    std::fill(SnapEpochArr.begin(), SnapEpochArr.end(), 0);
    std::fill(RoundDirtyEpoch.begin(), RoundDirtyEpoch.end(), 0);
    SnapEpoch = 1;
  }
  if (SnapPosArr.size() < N) {
    SnapPosArr.resize(N, 0);
    SnapEpochArr.resize(N, 0);
    RoundDirtyEpoch.resize(N, 0);
    ClsCount.resize(N, 0);
    ClsStart.resize(N, 0);
    ClsCursor.resize(N, 0);
  }

  // Pass 1 — snapshot the worklist in FIFO order and count each target's
  // incoming pushes. The enumeration order here (worklist position, then
  // flow-successor index, then delta index) IS the serial push order; a
  // push's verdict slot is its position in this enumeration.
  SnapNodes.clear();
  SnapDelta.clear();
  SnapByteOff.clear();
  ClsTargets.clear();
  uint64_t Total = 0;
  for (size_t K = 0; K < VarWorklist.size(); ++K) {
    if (Total > (uint64_t(1) << 31))
      break; // keep slots in 32 bits; the tail pops through the plain path
    NodeId Node = VarWorklist[K];
    const FlowSet &Set = Sets[Node];
    uint32_t D = static_cast<uint32_t>(Set.size() - Set.deltaBegin());
    SnapNodes.push_back(Node);
    SnapDelta.push_back(D);
    SnapByteOff.push_back(static_cast<uint32_t>(Total));
    SnapPosArr[Node] = static_cast<uint32_t>(K);
    SnapEpochArr[Node] = SnapEpoch;
    if (!D)
      continue;
    for (NodeId Succ : G.flowSuccessors(Node)) {
      if (G.node(Succ).Kind == NodeKind::Op)
        continue;
      if (!ClsCount[Succ])
        ClsTargets.push_back(Succ);
      ClsCount[Succ] += D;
      Total += D;
    }
  }
  SnapRemaining = SnapNodes.size();
  ++Stats.ParallelRounds;
  if (Total == 0)
    return; // no snapshot node pushes anywhere; replay is trivially exact

  // Pass 2 — group-by-target scatter (counting sort): per-target entry
  // runs hold that target's pushes in serial order.
  Verdicts.assign(static_cast<size_t>(Total), 0);
  ClsEntries.resize(static_cast<size_t>(Total));
  uint32_t Run = 0;
  for (NodeId T : ClsTargets) {
    ClsStart[T] = Run;
    ClsCursor[T] = Run;
    Run += ClsCount[T];
  }
  uint32_t Pos = 0;
  for (size_t K = 0; K < SnapNodes.size(); ++K) {
    uint32_t D = SnapDelta[K];
    if (!D)
      continue;
    const FlowSet &Set = Sets[SnapNodes[K]];
    const NodeId *Delta = Set.begin() + Set.deltaBegin();
    for (NodeId Succ : G.flowSuccessors(SnapNodes[K])) {
      if (G.node(Succ).Kind == NodeKind::Op)
        continue;
      for (uint32_t I = 0; I < D; ++I)
        ClsEntries[ClsCursor[Succ]++] = {Pos++, Delta[I]};
    }
  }
  Stats.ParallelClassified += Total;

  // Pass 3 — condense (or incrementally reuse) the flow topology and
  // order targets by stratum, so each wave touches a topologically
  // coherent slice; tiny strata coalesce until a wave can feed every
  // worker at the configured grain.
  if (!Scc)
    Scc.reset(new graph::SccIndex());
  if (!Scc->built() || Scc->needsRebuild(G.flowEdgeCount()))
    Scc->build(G);
  Scc->ensure(N);
  ClsSorted.assign(ClsTargets.begin(), ClsTargets.end());
  std::stable_sort(ClsSorted.begin(), ClsSorted.end(),
                   [this](NodeId A, NodeId B) {
                     return Scc->stratumOf(A) < Scc->stratumOf(B);
                   });

  // Pass 4 — simulate each wave on the pool; the wave boundary is a
  // barrier (parallelForGrained returns only when every chunk finished).
  ensureSolvePool();
  size_t WaveMin = static_cast<size_t>(SolveWorkers) * ClassifyGrain;
  size_t Begin = 0;
  while (Begin < ClsSorted.size()) {
    size_t End = Begin;
    while (End < ClsSorted.size() && End - Begin < WaveMin) {
      uint32_t Stratum = Scc->stratumOf(ClsSorted[End]);
      do
        ++End;
      while (End < ClsSorted.size() &&
             Scc->stratumOf(ClsSorted[End]) == Stratum);
    }
    size_t Count = End - Begin;
    if (Options.Trace) {
      support::TraceSink::Event &E = Options.Trace->instant("solve.wave");
      E.Args.emplace_back("wave", Stats.BarrierWaves);
      E.Args.emplace_back("targets", Count);
      E.Args.emplace_back("stratum", Scc->stratumOf(ClsSorted[Begin]));
    }
    support::parallelForGrained(
        *SolvePool, Count, ClassifyGrain, [this, Begin](size_t B, size_t E) {
          for (size_t I = B; I < E; ++I)
            simulateTarget(ClsSorted[Begin + I]);
        });
    ++Stats.BarrierWaves;
    if ((Count + ClassifyGrain - 1) / ClassifyGrain < SolveWorkers)
      ++Stats.BarrierStalls; // structural: wave narrower than the pool
    Begin = End;
  }

  // Dense tables are cleared by walking the touched targets, keeping the
  // per-round cost proportional to the round.
  for (NodeId T : ClsTargets)
    ClsCount[T] = 0;
}

void Solver::propagateSnapshot(NodeId N, uint32_t SnapPos) {
  ++Stats.Propagations;
  auto &Sets = Sol.flowsToSets();
  FlowSet &Set = Sets[N];
  if (!Set.hasDelta())
    return; // mirror propagate(): spurious wakeup
  PropScratch.assign(Set.begin() + Set.deltaBegin(), Set.end());
  Set.commit(Set.size());
  ++Stats.DeltaCommits;

  // The snapshot delta is a prefix of the pop-time delta: elements are
  // append-only and only this node's own pop commits its span, so
  // PropScratch[0..D) is byte-for-byte the span classification simulated.
  uint32_t D = SnapDelta[SnapPos];
  uint32_t SuccBase = SnapByteOff[SnapPos];
  for (NodeId Succ : G.flowSuccessors(N)) {
    if (G.node(Succ).Kind == NodeKind::Op)
      continue; // operation rules read role variables directly
    bool Clean = Succ < RoundDirtyEpoch.size() &&
                 RoundDirtyEpoch[Succ] != SnapEpoch;
    for (size_t I = 0; I < PropScratch.size(); ++I) {
      NodeId V = PropScratch[I];
      if (Prov)
        provCtx(DerivRule::FlowEdge, Prov->flowFact(N, V));
      if (I < D && Clean) {
        // Trusted verdict: the replayed target state equals the simulated
        // state (base set + exactly the predicted-new inserts executed so
        // far), so the verdict is the membership answer addValue would
        // compute. Byte positions mirror the classification enumeration.
        ++Stats.ValuesPushed;
        if (Verdicts[SuccBase + I]) {
          ++Stats.DedupHits;
          ++Stats.TrustedDups;
          continue;
        }
        ++Stats.TrustedAppends;
        Sol.flowsToSets()[Succ].insertNew(Sol.setArena(), V);
        if (Prov)
          Prov->recordFlow(Succ, V, PRule, PPrem[0], PPrem[1], PPrem[2]);
        if (!InVarWorklist[Succ]) {
          InVarWorklist[Succ] = true;
          VarWorklist.push_back(Succ);
          if (VarWorklist.size() > Stats.PeakVarWorklist)
            Stats.PeakVarWorklist = VarWorklist.size();
        }
        for (uint32_t OpIndex : OpUses[Succ])
          enqueueOp(OpIndex);
      } else {
        // Late-arriving delta suffix, or a target some plain insert
        // already diverged: the ordinary membership path. A successful
        // insert here round-dirties the target (see addValue).
        if (I < D)
          ++Stats.DirtyFallbacks; // had a verdict but couldn't trust it
        addValue(Succ, V);
      }
    }
    SuccBase += D;
  }
}

void Solver::prewarmDescendants() {
  // Only the XML onClick sweep walks every root holder's full hierarchy
  // each structure round; FindView re-fires query receiver-reachable
  // views only, an unpredictable subset not worth precomputing.
  if (!Options.ModelXmlOnClickHandlers)
    return;
  std::vector<NodeId> Stale;
  for (NodeId Holder : G.rootHolders())
    for (NodeId Root : G.roots(Holder))
      if (!G.descendantsCurrent(Root))
        Stale.push_back(Root);
  std::sort(Stale.begin(), Stale.end());
  Stale.erase(std::unique(Stale.begin(), Stale.end()), Stale.end());
  if (Stale.size() < 2)
    return; // one list: the lazy path recomputes it just as fast
  ensureSolvePool();
  std::vector<std::vector<NodeId>> Results(Stale.size());
  support::parallelForGrained(
      *SolvePool, Stale.size(), PrewarmGrain,
      [this, &Stale, &Results](size_t B, size_t E) {
        // Per-chunk scratch: the graph's own stamp vector is shared
        // mutable state; workers bring their own.
        std::vector<uint32_t> Seen;
        uint32_t Gen = 0;
        for (size_t I = B; I < E; ++I)
          G.computeDescendantsInto(Stale[I], Results[I], Seen, Gen);
      });
  for (size_t I = 0; I < Stale.size(); ++I)
    G.seedDescendants(Stale[I], std::move(Results[I]));
  Stats.DescPrewarmed += Stale.size();
}

//===----------------------------------------------------------------------===//
// Inflation (rules INFLATE1/INFLATE2, Section 3.2.1)
//===----------------------------------------------------------------------===//

NodeId Solver::inflateAt(size_t OpIndex, NodeId LayoutIdNode) {
  uint64_t Key = (static_cast<uint64_t>(OpIndex) << 32) | LayoutIdNode;
  auto It = InflatedAt.find(Key);
  if (It != InflatedAt.end())
    return It->second;

  const Node &IdNode = G.node(LayoutIdNode);
  const layout::LayoutDef *Def = Layouts.findById(IdNode.Res);
  OpSite &Op = Sol.opSites()[OpIndex];
  if (!Def) {
    Diags.warning(G.node(Op.OpNode).Loc,
                  "inflation of unknown layout id; site skipped");
    InflatedAt.emplace(Key, InvalidNode);
    return InvalidNode;
  }

  // Degenerate layouts must not crash the pipeline: a missing root (the
  // registry normally rejects these) or an empty <merge/> root has
  // nothing to inflate — diagnose, mark the solution degraded, and skip
  // the site (docs/ROBUSTNESS.md).
  const layout::LayoutNode *RootDef = Def->root();
  bool EmptyMerge = RootDef && RootDef->viewClassName().empty() &&
                    RootDef->children().empty();
  if (!GATOR_CHECK(RootDef != nullptr, &Diags,
                   "layout definition with no root node; site skipped") ||
      EmptyMerge) {
    if (EmptyMerge)
      Diags.warning(G.node(Op.OpNode).Loc,
                    "layout '" + Def->name() +
                        "' is an empty <merge/> with no inflatable root; "
                        "site skipped");
    Sol.markDegraded();
    Sol.noteUnresolvedOp(static_cast<uint32_t>(OpIndex));
    InflatedAt.emplace(Key, InvalidNode);
    return InvalidNode;
  }

  ++Stats.InflationCount;

  // Every fact minted by this inflation derives from the layout id
  // reaching the site's id argument.
  FactId IdFact = provFlow(Op.IdArg, LayoutIdNode);

  // Mint a fresh subtree of ViewInfl nodes for this (site, layout) pair.
  // Section 4.1: "If the same layout is inflated in several places in the
  // application, a 'fresh' set of graph nodes is introduced at each
  // inflation site."
  const ClassDecl *ViewBase = ViewBaseClass;
  const ClassDecl *GroupBase = GroupBaseClass;

  struct Frame {
    const layout::LayoutNode *LNode;
    NodeId ParentView;
  };
  NodeId Root = InvalidNode;
  std::vector<Frame> Work{{Def->root(), InvalidNode}};
  while (!Work.empty()) {
    Frame F = Work.back();
    Work.pop_back();

    const ClassDecl *Klass =
        F.LNode->viewClassName().empty()
            ? GroupBase // <merge> root inflated directly
            : AM.resolveLayoutClassName(F.LNode->viewClassName());
    if (!Klass) {
      Diags.warning(F.LNode->loc(), "unknown view class '" +
                                        F.LNode->viewClassName() +
                                        "' in layout '" + Def->name() +
                                        "'; modeled as android.view.View");
      Klass = ViewBase;
    }

    NodeId ViewNode = G.makeViewInflNode(Klass, F.LNode, Op.OpNode);
    ensureSets();
    Sol.flowsToSets()[ViewNode].insert(Sol.setArena(), ViewNode);
    if (Prov)
      Prov->recordFlow(ViewNode, ViewNode, DerivRule::Inflate, IdFact);

    if (F.ParentView == InvalidNode) {
      Root = ViewNode;
    } else {
      G.addParentChildEdge(F.ParentView, ViewNode);
      provEdge(FactKind::ParentChild, F.ParentView, ViewNode,
               DerivRule::Inflate, IdFact);
    }

    if (F.LNode->hasViewId()) {
      layout::ResourceId VId = F.LNode->resolvedViewIdRes();
      if (VId == layout::InvalidResourceId) {
        VId = Layouts.resources().lookupViewId(F.LNode->viewIdName());
        if (VId != layout::InvalidResourceId)
          F.LNode->setResolvedViewIdRes(VId);
      }
      if (VId != layout::InvalidResourceId) {
        size_t NodesBefore = G.size();
        NodeId IdNode = G.getViewIdNode(VId);
        if (IdNode >= NodesBefore) {
          // An id name first interned by an edit-scale layout re-analysis
          // has no pre-built node, so seedValueNodes() never saw it; seed
          // the fresh node here or its value set stays empty.
          provCtx(DerivRule::Seed);
          addValue(IdNode, IdNode);
        }
        G.addHasIdEdge(ViewNode, IdNode);
        provEdge(FactKind::HasId, ViewNode, IdNode, DerivRule::Inflate,
                 IdFact);
      }
    }

    for (const auto &Child : F.LNode->children())
      Work.push_back({Child.get(), ViewNode});
  }

  if (!GATOR_CHECK(Root != InvalidNode, &Diags,
                   "layout walk minted no root view; site skipped")) {
    Sol.markDegraded();
    Sol.noteUnresolvedOp(static_cast<uint32_t>(OpIndex));
    InflatedAt.emplace(Key, InvalidNode);
    return InvalidNode;
  }
  // Record the inflation origin: view => layoutId, per Section 4.1.
  G.addRootsLayoutEdge(Root, LayoutIdNode);
  provEdge(FactKind::RootsLayout, Root, LayoutIdNode, DerivRule::Inflate,
           IdFact);

  InflatedAt.emplace(Key, Root);
  noteStructureChange();
  return Root;
}

void Solver::fireInflate(OpSite &Op) {
  // Collect the layout ids reaching the id argument.
  std::vector<NodeId> LayoutIds;
  for (NodeId V : Sol.valuesAt(Op.IdArg))
    if (G.node(V).Kind == NodeKind::LayoutId)
      LayoutIds.push_back(V);

  size_t OpIndex = &Op - Sol.opSites().data();
  for (NodeId L : LayoutIds) {
    NodeId Root = inflateAt(OpIndex, L);
    if (Root == InvalidNode)
      continue;

    if (Op.Spec.Kind == OpKind::Inflate1) {
      // Rule INFLATE1: the root is the call's result.
      provCtx(DerivRule::Inflate, provFlow(Op.IdArg, L), provFlow(Root, Root));
      addValue(Op.Out, Root);
      // inflate(id, parent): the root also becomes a child of the parent.
      if (Op.AttachParent != InvalidNode)
        for (NodeId P : Sol.viewsAt(Op.AttachParent))
          if (G.addParentChildEdge(P, Root)) {
            provEdge(FactKind::ParentChild, P, Root, DerivRule::InflateAttach,
                     provFlow(Op.AttachParent, P), provFlow(Root, Root));
            noteStructureChange();
          }
    } else {
      // Rule INFLATE2: the root is associated with the activity/dialog.
      for (NodeId W : Sol.valuesAt(Op.Recv)) {
        NodeKind K = G.node(W).Kind;
        if (K != NodeKind::Activity && K != NodeKind::Alloc)
          continue;
        if (G.addRootEdge(W, Root)) {
          provEdge(FactKind::Root, W, Root, DerivRule::Inflate,
                   provFlow(Op.Recv, W), provFlow(Op.IdArg, L));
          noteStructureChange();
        }
      }
    }
  }

  // Unknown-source ids (docs/ROBUSTNESS.md): a dynamic or missing layout
  // id reaching an inflation site mints one tagged unknown root per
  // (site, id) — enough to keep downstream rules flowing while the
  // degradation stays visible through the node's reason tag.
  std::vector<NodeId> UnknownIds;
  for (NodeId V : Sol.valuesAt(Op.IdArg))
    if (G.node(V).Kind == NodeKind::UnknownId)
      UnknownIds.push_back(V);
  for (NodeId U : UnknownIds) {
    uint64_t Key = (static_cast<uint64_t>(OpIndex) << 32) | U;
    auto It = InflatedAt.find(Key);
    NodeId Root;
    if (It != InflatedAt.end()) {
      Root = It->second;
    } else {
      Root = G.makeUnknownViewNode(G.node(U).Unknown, Op.Method,
                                   G.node(Op.OpNode).Loc, Op.OpNode);
      InflatedAt.emplace(Key, Root);
      ensureSets();
      Sol.flowsToSets()[Root].insert(Sol.setArena(), Root);
      if (Prov)
        Prov->recordFlow(Root, Root, DerivRule::UnknownSource,
                         provFlow(Op.IdArg, U));
      G.addRootsLayoutEdge(Root, U);
      provEdge(FactKind::RootsLayout, Root, U, DerivRule::UnknownSource,
               provFlow(Op.IdArg, U));
      Sol.markDegraded();
      Sol.noteUnresolvedOp(static_cast<uint32_t>(OpIndex));
      noteStructureChange();
    }
    if (Root == InvalidNode)
      continue;
    if (Op.Spec.Kind == OpKind::Inflate1) {
      provCtx(DerivRule::UnknownSource, provFlow(Op.IdArg, U),
              provFlow(Root, Root));
      addValue(Op.Out, Root);
      if (Op.AttachParent != InvalidNode)
        for (NodeId P : Sol.viewsAt(Op.AttachParent))
          if (P != Root && G.addParentChildEdge(P, Root)) {
            provEdge(FactKind::ParentChild, P, Root,
                     DerivRule::UnknownSource, provFlow(Op.AttachParent, P),
                     provFlow(Root, Root));
            noteStructureChange();
          }
    } else {
      for (NodeId W : Sol.valuesAt(Op.Recv)) {
        NodeKind K = G.node(W).Kind;
        if (K != NodeKind::Activity && K != NodeKind::Alloc)
          continue;
        if (G.addRootEdge(W, Root)) {
          provEdge(FactKind::Root, W, Root, DerivRule::UnknownSource,
                   provFlow(Op.Recv, W), provFlow(Op.IdArg, U));
          noteStructureChange();
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// View-structure rules
//===----------------------------------------------------------------------===//

void Solver::fireAddView1(OpSite &Op) {
  // Rule ADDVIEW1: activity.setContentView(view).
  for (NodeId W : Sol.valuesAt(Op.Recv)) {
    NodeKind K = G.node(W).Kind;
    if (K != NodeKind::Activity && K != NodeKind::Alloc)
      continue;
    for (NodeId V : Sol.viewsAt(Op.ValArg))
      if (G.addRootEdge(W, V)) {
        provEdge(FactKind::Root, W, V, DerivRule::AddView1,
                 provFlow(Op.Recv, W), provFlow(Op.ValArg, V));
        noteStructureChange();
      }
  }
}

void Solver::fireAddView2(OpSite &Op) {
  // Rule ADDVIEW2: parent.addView(child).
  for (NodeId P : Sol.viewsAt(Op.Recv))
    for (NodeId C : Sol.viewsAt(Op.ValArg))
      if (P != C && G.addParentChildEdge(P, C)) {
        provEdge(FactKind::ParentChild, P, C, DerivRule::AddView2,
                 provFlow(Op.Recv, P), provFlow(Op.ValArg, C));
        noteStructureChange();
      }
}

void Solver::fireSetId(OpSite &Op) {
  // Rule SETID: view.setId(id).
  for (NodeId V : Sol.viewsAt(Op.Recv))
    for (NodeId IdVal : Sol.valuesAt(Op.IdArg)) {
      NodeKind K = G.node(IdVal).Kind;
      // An unknown id (dynamic/missing resource) still records the hasId
      // association; FindView* treats views carrying an unknown id as
      // matching any lookup (docs/ROBUSTNESS.md).
      if (K == NodeKind::ViewId || K == NodeKind::UnknownId)
        if (G.addHasIdEdge(V, IdVal)) {
          provEdge(FactKind::HasId, V, IdVal,
                   K == NodeKind::UnknownId ? DerivRule::UnknownSource
                                            : DerivRule::SetId,
                   provFlow(Op.Recv, V), provFlow(Op.IdArg, IdVal));
          noteStructureChange();
        }
    }
}

void Solver::wireListenerCallback(NodeId View, NodeId ListenerValue,
                                  const ListenerSpec &Spec) {
  // The callback y.n(x): listener object becomes `this` of the handler and
  // the view flows into the handler's view parameter.
  const ClassDecl *LClass = G.node(ListenerValue).Klass;
  if (!LClass || LClass->isPlatform())
    return;
  FactId LFact = Prov
                     ? Prov->edgeFact(FactKind::Listener, View, ListenerValue)
                     : ProvenanceRecorder::NoFact;
  if (Prov)
    provCtx(DerivRule::ListenerCallback, LFact);
  for (const HandlerSig &Sig : Spec.Handlers) {
    const MethodDecl *Handler =
        hier::ClassHierarchy::dispatch(LClass, Sig.MethodName, Sig.Arity);
    if (!Handler || Handler->owner()->isPlatform())
      continue;
    NodeId ThisNode = G.getVarNode(Handler, Handler->thisVar());
    solverAddFlowEdge(ListenerValue, ThisNode);
    provLink(ListenerValue, ThisNode, DerivRule::ListenerCallback, LFact);
    addValue(ThisNode, ListenerValue);
    if (Sig.ViewParamIndex >= 0 &&
        static_cast<unsigned>(Sig.ViewParamIndex) < Handler->paramCount()) {
      NodeId ParamNode = G.getVarNode(
          Handler, Handler->paramVar(static_cast<unsigned>(Sig.ViewParamIndex)));
      addValue(ParamNode, View);
    }
  }
}

void Solver::fireSetListener(OpSite &Op) {
  // Rule SETLISTENER: view.setOnXListener(listener).
  if (!GATOR_CHECK(Op.Spec.Listener != nullptr, &Diags,
                   "SetListener op without listener spec; site skipped")) {
    Sol.markDegraded();
    Sol.noteUnresolvedOp(
        static_cast<uint32_t>(&Op - Sol.opSites().data()));
    return;
  }
  for (NodeId V : Sol.viewsAt(Op.Recv))
    for (NodeId L : Sol.listenerValuesAt(Op.ValArg))
      if (G.addListenerEdge(V, L)) {
        provEdge(FactKind::Listener, V, L, DerivRule::SetListener,
                 provFlow(Op.Recv, V), provFlow(Op.ValArg, L));
        if (Options.ModelListenerCallbacks)
          wireListenerCallback(V, L, *Op.Spec.Listener);
      }
}

void Solver::fireFragmentAdd(size_t OpIndex) {
  // Extension rule: transaction.add(containerId, fragment). The framework
  // calls fragment.onCreateView(inflater); the returned view becomes a
  // child of every view carrying the container id.
  OpSite &Op = Sol.opSites()[OpIndex];

  // 1. Wire the onCreateView callback per reaching fragment allocation,
  // and register this op on the callback's return variables so it
  // re-fires when the returned views become known. Copy the value set:
  // addValue below may insert into the very set being walked (a factory
  // calling tx.add on its own `this`).
  std::vector<NodeId> FragmentValues(Sol.valuesAt(Op.ValArg).begin(),
                                     Sol.valuesAt(Op.ValArg).end());
  for (NodeId F : FragmentValues) {
    if (G.node(F).Kind != NodeKind::Alloc)
      continue;
    const ClassDecl *FClass = G.node(F).Klass;
    const MethodDecl *Factory =
        FClass ? hier::ClassHierarchy::dispatch(FClass, "onCreateView", 1)
               : nullptr;
    if (!Factory || Factory->owner()->isPlatform())
      continue;
    // Register on the factory's returns outside the FragmentWired guard:
    // registerOpUses rebuilds OpUses from role edges only, so a re-solve
    // must re-establish this registration even when the callback wiring
    // is already memoized (addOpUse dedups).
    for (const Stmt &Ret : Factory->body())
      if (Ret.Kind == StmtKind::Return && Ret.Lhs != InvalidVar)
        addOpUse(G.getVarNode(Factory, Ret.Lhs), OpIndex);
    uint64_t Key = (static_cast<uint64_t>(OpIndex) << 32) | F;
    if (!FragmentWired.insert(Key).second)
      continue;
    NodeId ThisNode = G.getVarNode(Factory, Factory->thisVar());
    solverAddFlowEdge(F, ThisNode);
    provLink(F, ThisNode, DerivRule::FragmentAdd, provFlow(Op.ValArg, F));
    provCtx(DerivRule::FragmentAdd, provFlow(Op.ValArg, F));
    addValue(ThisNode, F);
  }

  // 2. Attach every known fragment root under every container view whose
  // id reaches the container-id argument.
  std::vector<NodeId> WantedIds;
  for (NodeId IdVal : Sol.valuesAt(Op.IdArg))
    if (G.node(IdVal).Kind == NodeKind::ViewId)
      WantedIds.push_back(IdVal);
  if (WantedIds.empty())
    return;

  std::vector<NodeId> FragmentRoots;
  for (NodeId F : FragmentValues) {
    if (G.node(F).Kind != NodeKind::Alloc)
      continue;
    const ClassDecl *FClass = G.node(F).Klass;
    const MethodDecl *Factory =
        FClass ? hier::ClassHierarchy::dispatch(FClass, "onCreateView", 1)
               : nullptr;
    if (!Factory || Factory->owner()->isPlatform())
      continue;
    for (const Stmt &Ret : Factory->body())
      if (Ret.Kind == StmtKind::Return && Ret.Lhs != InvalidVar)
        for (NodeId V : Sol.viewsAt(G.getVarNode(Factory, Ret.Lhs)))
          FragmentRoots.push_back(V);
  }
  if (FragmentRoots.empty())
    return;

  if (Options.DeltaPropagation) {
    // Containers come straight from the reverse viewId -> views index.
    for (NodeId IdNode : WantedIds) {
      // Copy: addParentChildEdge cannot extend viewsWithId, but an id may
      // be assigned mid-loop by a re-entrant rule in future revisions;
      // the copy is tiny and keeps iteration sound.
      std::vector<NodeId> Containers(G.viewsWithId(IdNode).begin(),
                                     G.viewsWithId(IdNode).end());
      for (NodeId Container : Containers)
        for (NodeId Root : FragmentRoots)
          if (Container != Root && G.addParentChildEdge(Container, Root)) {
            provEdge(FactKind::ParentChild, Container, Root,
                     DerivRule::FragmentAdd, provFlow(Root, Root),
                     Prov ? Prov->edgeFact(FactKind::HasId, Container, IdNode)
                          : ProvenanceRecorder::NoFact);
            noteStructureChange();
          }
    }
    return;
  }

  // Naive reference mode: the historical full-graph container scan.
  std::unordered_set<NodeId> WantedIdSet(WantedIds.begin(), WantedIds.end());
  for (NodeId Container = 0; Container < G.size(); ++Container) {
    if (!isViewNodeKind(G.node(Container).Kind))
      continue;
    bool Matches = false;
    for (NodeId IdNode : G.viewIds(Container))
      if (WantedIdSet.count(IdNode))
        Matches = true;
    if (!Matches)
      continue;
    for (NodeId Root : FragmentRoots)
      if (Container != Root && G.addParentChildEdge(Container, Root)) {
        provEdge(FactKind::ParentChild, Container, Root,
                 DerivRule::FragmentAdd, provFlow(Root, Root));
        noteStructureChange();
      }
  }
}

void Solver::fireSetAdapter(size_t OpIndex) {
  // Extension rule: listView.setAdapter(adapter). The framework calls
  // adapter.getView(inflater) per row; every returned view becomes a
  // child of the AdapterView.
  OpSite &Op = Sol.opSites()[OpIndex];

  // Copy the adapter values: addValue below may insert into the set being
  // walked when the factory registers on its own `this`.
  std::vector<NodeId> AdapterValues(Sol.valuesAt(Op.ValArg).begin(),
                                    Sol.valuesAt(Op.ValArg).end());
  for (NodeId A : AdapterValues) {
    if (G.node(A).Kind != NodeKind::Alloc)
      continue;
    const ClassDecl *AClass = G.node(A).Klass;
    const MethodDecl *Factory =
        AClass ? hier::ClassHierarchy::dispatch(AClass, "getView", 1)
               : nullptr;
    if (!Factory || Factory->owner()->isPlatform())
      continue;
    // As in fireFragmentAdd: return-variable registration must survive a
    // registerOpUses rebuild, so it stays outside the memo guard.
    for (const Stmt &Ret : Factory->body())
      if (Ret.Kind == StmtKind::Return && Ret.Lhs != InvalidVar)
        addOpUse(G.getVarNode(Factory, Ret.Lhs), OpIndex);
    uint64_t Key = (static_cast<uint64_t>(OpIndex) << 32) | A;
    if (!FragmentWired.insert(Key).second)
      continue; // reuse the factory-wiring dedup table
    NodeId ThisNode = G.getVarNode(Factory, Factory->thisVar());
    solverAddFlowEdge(A, ThisNode);
    provLink(A, ThisNode, DerivRule::SetAdapter, provFlow(Op.ValArg, A));
    provCtx(DerivRule::SetAdapter, provFlow(Op.ValArg, A));
    addValue(ThisNode, A);
  }

  for (NodeId A : AdapterValues) {
    if (G.node(A).Kind != NodeKind::Alloc)
      continue;
    const ClassDecl *AClass = G.node(A).Klass;
    const MethodDecl *Factory =
        AClass ? hier::ClassHierarchy::dispatch(AClass, "getView", 1)
               : nullptr;
    if (!Factory || Factory->owner()->isPlatform())
      continue;
    for (const Stmt &Ret : Factory->body()) {
      if (Ret.Kind != StmtKind::Return || Ret.Lhs == InvalidVar)
        continue;
      for (NodeId Item : Sol.viewsAt(G.getVarNode(Factory, Ret.Lhs)))
        for (NodeId ListView : Sol.viewsAt(Op.Recv))
          if (ListView != Item && G.addParentChildEdge(ListView, Item)) {
            provEdge(FactKind::ParentChild, ListView, Item,
                     DerivRule::SetAdapter, provFlow(Op.Recv, ListView),
                     provFlow(Item, Item));
            noteStructureChange();
          }
    }
  }
}

void Solver::fireFindView(OpSite &Op) {
  // Rules FINDVIEW1/2/3: resolve over the current hierarchy and id state.
  if (Op.Out == InvalidNode)
    return;
  NodeId UnknownIdAtArg = InvalidNode;
  if (Op.IdArg != InvalidNode)
    for (NodeId IdVal : Sol.valuesAt(Op.IdArg))
      if (G.node(IdVal).Kind == NodeKind::UnknownId) {
        UnknownIdAtArg = IdVal;
        break;
      }
  if (UnknownIdAtArg != InvalidNode) {
    // An unknown id widens this lookup to the receiver's full view set
    // (capped by UnknownFanoutBudget); the result is approximate.
    Sol.markDegraded();
    Sol.noteUnresolvedOp(static_cast<uint32_t>(&Op - Sol.opSites().data()));
  }
  for (NodeId R :
       Sol.resultsOf(Op, Options.TrackViewIds, Options.TrackHierarchy,
                     Options.FindView3ChildOnly,
                     Options.UnknownFanoutBudget)) {
    if (Prov) {
      // Premises: the view's existence, and — for id-driven lookups — the
      // hasId fact that matched one of the ids reaching the id argument.
      FactId MatchedId = ProvenanceRecorder::NoFact;
      if (Op.IdArg != InvalidNode)
        for (NodeId IdVal : Sol.valuesAt(Op.IdArg)) {
          if (G.node(IdVal).Kind != NodeKind::ViewId)
            continue;
          MatchedId = Prov->edgeFact(FactKind::HasId, R, IdVal);
          if (MatchedId != ProvenanceRecorder::NoFact)
            break;
        }
      // A result with no concrete matching id that arrived because an
      // unknown id widened the lookup derives from the unknown source;
      // citing the unknown-id flow as a premise routes --explain's
      // derivation tree to the node that carries the degradation reason.
      if (MatchedId == ProvenanceRecorder::NoFact &&
          UnknownIdAtArg != InvalidNode)
        provCtx(DerivRule::UnknownSource, provFlow(R, R),
                provFlow(Op.IdArg, UnknownIdAtArg));
      else
        provCtx(DerivRule::FindView, provFlow(R, R), MatchedId);
    }
    addValue(Op.Out, R);
  }
}

void Solver::fireOp(size_t OpIndex) {
  OpSite &Op = Sol.opSites()[OpIndex];
  if (Op.Dead)
    return; // tombstoned by an edit-scale re-analysis (docs/INCREMENTAL.md)
  ++Stats.OpFirings;
  ++Stats.FiringsByKind[static_cast<size_t>(Op.Spec.Kind)];
  switch (Op.Spec.Kind) {
  case OpKind::Inflate1:
  case OpKind::Inflate2:
    fireInflate(Op);
    break;
  case OpKind::AddView1:
    fireAddView1(Op);
    break;
  case OpKind::AddView2:
    fireAddView2(Op);
    break;
  case OpKind::SetId:
    fireSetId(Op);
    break;
  case OpKind::SetListener:
    fireSetListener(Op);
    break;
  case OpKind::FindView1:
  case OpKind::FindView2:
  case OpKind::FindView3:
    fireFindView(Op);
    break;
  case OpKind::FragmentAdd:
    fireFragmentAdd(OpIndex);
    break;
  case OpKind::SetAdapter:
    fireSetAdapter(OpIndex);
    break;
  case OpKind::StartActivity:
  case OpKind::SetIntentClass:
    // Client ops: consumed post-fixpoint by the guimodel library; they do
    // not influence view propagation.
    break;
  }
}

SolverStats Solver::solve() {
  Stats = SolverStats();
  ViewBaseClass = AM.program().findClass(names::View);
  GroupBaseClass = AM.program().findClass(names::ViewGroup);
  SolveWorkers = support::resolveJobs(Options.SolveJobs);
  ParEligible = SolveWorkers > 1 && Options.DeltaPropagation &&
                !Options.DeclaredTypeFilter;
  ensureSets();
  registerOpUses();
  seedValueNodes();
  return runFixpoint();
}

SolverStats Solver::resolveIncremental(
    const std::vector<graph::NodeId> &Touched) {
  Stats = SolverStats();
  ViewBaseClass = AM.program().findClass(names::View);
  GroupBaseClass = AM.program().findClass(names::ViewGroup);
  SolveWorkers = support::resolveJobs(Options.SolveJobs);
  ParEligible = SolveWorkers > 1 && Options.DeltaPropagation &&
                !Options.DeclaredTypeFilter;
  ensureSets();
  registerOpUses();
  seedValueNodes();

  // The retraction closure may have deleted facts at a touched node that
  // an untouched (fully committed) flow predecessor still implies, and
  // committed values never re-propagate on their own — pull every
  // predecessor's full set across edges into the touched nodes. One
  // reverse-adjacency scan; edit-scale, not per-solve.
  if (!Touched.empty()) {
    std::vector<bool> IsTouched(G.size(), false);
    for (NodeId T : Touched)
      if (T < G.size())
        IsTouched[T] = true;
    auto &Sets = Sol.flowsToSets();
    for (NodeId P = 0; P < G.size() && P < Sets.size(); ++P) {
      bool AnyTouchedSucc = false;
      for (NodeId S : G.flowSuccessors(P))
        if (IsTouched[S] && G.node(S).Kind != NodeKind::Op) {
          AnyTouchedSucc = true;
          break;
        }
      if (!AnyTouchedSucc || Sets[P].empty())
        continue;
      // Copy out: addValue may grow Sets and invalidate the iterators.
      std::vector<NodeId> Values(Sets[P].begin(), Sets[P].end());
      for (NodeId S : G.flowSuccessors(P)) {
        if (S >= IsTouched.size() || !IsTouched[S] ||
            G.node(S).Kind == NodeKind::Op)
          continue;
        for (NodeId V : Values) {
          if (Prov)
            provCtx(DerivRule::FlowEdge, Prov->flowFact(P, V));
          addValue(S, V);
        }
      }
    }
    // Surviving values in touched sets are all-delta (FlowSet::eraseValues
    // reset the commit mark); enqueue them so they re-push downstream.
    for (NodeId T : Touched)
      if (T < Sol.flowsToSets().size() && Sol.flowsToSets()[T].hasDelta() &&
          !InVarWorklist[T]) {
        InVarWorklist[T] = true;
        VarWorklist.push_back(T);
      }
  }

  // Re-fire every live op once: rules read full role sets, so this
  // re-derives over-deleted op facts and re-mints forgotten inflations
  // even when no role set has a delta. Idempotent (dedup absorbs the
  // rest) and edit-scale cheap.
  for (size_t I = 0; I < Sol.opSites().size(); ++I)
    if (!Sol.opSites()[I].Dead)
      enqueueOp(I);

  // Force one structure round: retraction may have removed hierarchy/id
  // edges the structure-sensitive ops and the XML sweep must re-derive.
  StructureDirty = true;
  return runFixpoint();
}

void Solver::forgetOpMemos(uint32_t OpIndex) {
  for (auto It = InflatedAt.begin(); It != InflatedAt.end();)
    It = (It->first >> 32) == OpIndex ? InflatedAt.erase(It) : std::next(It);
  for (auto It = FragmentWired.begin(); It != FragmentWired.end();)
    It = (*It >> 32) == OpIndex ? FragmentWired.erase(It) : std::next(It);
}

void Solver::forgetLayoutMemos(graph::NodeId LayoutIdNode) {
  for (auto It = InflatedAt.begin(); It != InflatedAt.end();)
    It = static_cast<NodeId>(It->first & 0xffffffffu) == LayoutIdNode
             ? InflatedAt.erase(It)
             : std::next(It);
}

void Solver::forgetWiredValue(graph::NodeId Value) {
  for (auto It = FragmentWired.begin(); It != FragmentWired.end();)
    It = static_cast<NodeId>(*It & 0xffffffffu) == Value
             ? FragmentWired.erase(It)
             : std::next(It);
}

SolverStats Solver::runFixpoint() {
  support::TraceSpan FixpointSpan(Options.Trace, "solver.fixpoint");
  uint64_t StartRev = G.hierarchyRevision();
  unsigned long StartDescHits = G.descendantsCacheHits();
  unsigned long StartDescMisses = G.descendantsCacheMisses();

  // A prior run that tripped its budget mid-drain may have left an
  // unconsumed snapshot; its verdicts describe dead state.
  SnapRemaining = 0;

  support::BudgetTracker Tracker(Options.Budget);
  for (;;) {
    if (VarWorklist.empty() && OpWorklist.empty()) {
      // Quiescent: apply structure-driven models once per structure
      // growth; they may seed new propagation. Delta mode also batches
      // the structure-sensitive op re-fires here (noteStructureChange
      // only marks), firing each op once per round instead of once per
      // added edge.
      if (!StructureDirty)
        break;
      if (!Tracker.checkpoint(G.size(), G.flowEdgeCount() +
                                            G.parentChildEdgeCount()))
        break;
      StructureDirty = false;
      ++Stats.StructureRounds;
      if (Options.Trace)
        Options.Trace->instant("solver.structure-round");
      if (Options.DeltaPropagation)
        for (size_t OpIndex : StructureSensitiveOps)
          enqueueOp(OpIndex);
      if (ParEligible)
        prewarmDescendants();
      sweepXmlOnClickHandlers();
      continue;
    }
    if (!Tracker.charge())
      break;
    if (!VarWorklist.empty()) {
      if (ParEligible && SnapRemaining == 0 &&
          VarWorklist.size() >= SnapshotMinWorklist)
        classifyRound();
      NodeId N = VarWorklist.front();
      VarWorklist.pop_front();
      InVarWorklist[N] = false;
      if (SnapRemaining && N < SnapEpochArr.size() &&
          SnapEpochArr[N] == SnapEpoch) {
        SnapEpochArr[N] = 0; // consume: a re-pop replays the plain path
        --SnapRemaining;
        propagateSnapshot(N, SnapPosArr[N]);
      } else {
        propagate(N);
      }
      continue;
    }
    // Op firings grow the graph (inflation mints whole subtrees), so the
    // node/edge caps are probed here rather than per propagation.
    if (!Tracker.checkpoint(G.size(),
                            G.flowEdgeCount() + G.parentChildEdgeCount()))
      break;
    size_t OpIndex = OpWorklist.front();
    OpWorklist.pop_front();
    InOpWorklist[OpIndex] = false;
    fireOp(OpIndex);
  }

  Stats.WorkCharged = Tracker.workCharged();
  if (Tracker.exhausted()) {
    // Fail-soft: keep everything computed so far, mark the solution as a
    // truncated under-approximation, and record which op sites were
    // still pending so clients can see what is unresolved.
    Stats.HitWorkLimit = true;
    Stats.BudgetTripped = Tracker.reason();
    for (size_t OpIndex : OpWorklist)
      Sol.noteUnresolvedOp(static_cast<uint32_t>(OpIndex));
    Sol.markTruncated(Tracker.reason());
    Diags.warning(std::string("solver budget exhausted (") +
                  support::budgetReasonName(Tracker.reason()) +
                  "); solution is a partial under-approximation");
  }

  // Set-shape and cache telemetry for AppStats / the benches.
  for (const FlowSet &Set : Sol.flowsToSets()) {
    if (Set.size() > Stats.PeakSetSize)
      Stats.PeakSetSize = Set.size();
    if (Set.promoted())
      ++Stats.PromotedSets;
  }
  Stats.HierarchyRevisions = G.hierarchyRevision() - StartRev;
  Stats.DescCacheHits = G.descendantsCacheHits() - StartDescHits;
  Stats.DescCacheMisses = G.descendantsCacheMisses() - StartDescMisses;
  if (Scc && Scc->built()) {
    Stats.SccCount = Scc->sccCount();
    Stats.SccMaxSize = Scc->maxSccSize();
    Stats.SccSingletons = Scc->singletonSccs();
    Stats.SccSmall = Scc->smallSccs();
    Stats.SccLarge = Scc->largeSccs();
    Stats.SccStrata = Scc->strataCount();
    Stats.SccRecondensations = Scc->recondensations();
    Stats.SccIncrementalAccepts = Scc->incrementalAccepts();
  }
  FixpointSpan.arg("propagations", Stats.Propagations);
  FixpointSpan.arg("op_firings", Stats.OpFirings);
  FixpointSpan.arg("inflations", Stats.InflationCount);
  FixpointSpan.arg("structure_rounds", Stats.StructureRounds);
  return Stats;
}
