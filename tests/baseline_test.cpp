//===- baseline_test.cpp - Plain-Java baseline tests ------------*- C++ -*-===//

#include "baseline/Baseline.h"
#include "corpus/ConnectBot.h"
#include "corpus/Corpus.h"

#include <gtest/gtest.h>

using namespace gator;
using namespace gator::baseline;

namespace {

TEST(BaselineTest, ConnectBotUnmodeled) {
  auto App = corpus::buildConnectBotExample();
  ASSERT_TRUE(App && !App->Diags.hasErrors());
  BaselineOptions Options;
  Options.Treatment = PlatformCallTreatment::Unmodeled;
  BaselineResult R =
      runBaseline(App->Program, App->Android, Options, App->Diags);

  // The example has 5 find-view-ish sites (2 activity finds, 1 view find,
  // 1 getCurrentView, 1 inflate is not a find) — count what the
  // classifier sees.
  EXPECT_EQ(R.FindViewSites, 4u);
  // Without framework modeling, nothing flows out of platform calls.
  EXPECT_EQ(R.FindViewSitesWithValues, 0u);
  EXPECT_EQ(R.FindViewSitesResolvedToLayoutViews, 0u);
  // onCreate is never "called" (no lifecycle model), so even the listener
  // allocation never reaches the registration site's receiver.
  EXPECT_EQ(R.SetListenerSites, 1u);
  EXPECT_EQ(R.SetListenerSitesWithOperands, 0u);
  // The paper's core motivation: event-handling code is invisible.
  EXPECT_EQ(R.HandlersTotal, 1u);
  EXPECT_EQ(R.HandlersReached, 0u);
}

TEST(BaselineTest, SummaryObjectsGiveValuesButNoGuiMeaning) {
  auto App = corpus::buildConnectBotExample();
  ASSERT_TRUE(App && !App->Diags.hasErrors());
  BaselineOptions Options;
  Options.Treatment = PlatformCallTreatment::SummaryObjects;
  Options.SeedAllMethods = true;
  BaselineResult R =
      runBaseline(App->Program, App->Android, Options, App->Diags);
  // With per-site opaque summaries and all methods seeded, the find-view
  // results carry values...
  EXPECT_GT(R.FindViewSitesWithValues, 0u);
  // ...but never any layout-derived view (the baseline has no notion of
  // inflation), which is the point of the comparison.
  EXPECT_EQ(R.FindViewSitesResolvedToLayoutViews, 0u);
  EXPECT_GT(R.TotalFacts, 0ul);
}

TEST(BaselineTest, SeedAllMethodsReachesHandlers) {
  auto App = corpus::buildConnectBotExample();
  ASSERT_TRUE(App && !App->Diags.hasErrors());
  BaselineOptions Options;
  Options.SeedAllMethods = true;
  BaselineResult R =
      runBaseline(App->Program, App->Android, Options, App->Diags);
  // Crude whole-program seeding reaches the handler bodies, but provides
  // no view-to-handler association (SetListener stays meaningless).
  EXPECT_EQ(R.HandlersReached, R.HandlersTotal);
}

TEST(BaselineTest, AppMethodCallsStillPropagate) {
  // The baseline is a real reference analysis for the plain-Java subset:
  // allocations flow through calls, returns, and fields.
  auto App = corpus::buildConnectBotExample();
  BaselineOptions Options;
  Options.SeedAllMethods = true;
  BaselineResult R =
      runBaseline(App->Program, App->Android, Options, App->Diags);
  EXPECT_GT(R.TotalFacts, 10ul);
}

TEST(BaselineTest, CorpusAppsRun) {
  for (size_t I : {size_t(0), size_t(4), size_t(19)}) {
    corpus::GeneratedApp App = corpus::generateApp(corpus::paperCorpus()[I]);
    BaselineOptions Options;
    BaselineResult R = runBaseline(App.Bundle->Program, App.Bundle->Android,
                                   Options, App.Bundle->Diags);
    EXPECT_GT(R.FindViewSites, 0u);
    EXPECT_EQ(R.FindViewSitesResolvedToLayoutViews, 0u);
  }
}

} // namespace
