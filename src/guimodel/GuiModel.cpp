//===- GuiModel.cpp - Client analyses over the GUI solution -----*- C++ -*-===//

#include "guimodel/GuiModel.h"

#include "hier/ClassHierarchy.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace gator;
using namespace gator::guimodel;
using namespace gator::analysis;
using namespace gator::graph;
using namespace gator::android;
using namespace gator::ir;

namespace {

/// view node -> activity classes whose hierarchy contains it.
std::unordered_map<NodeId, std::vector<const ClassDecl *>>
viewOwners(const AnalysisResult &Result) {
  const ConstraintGraph &G = *Result.Graph;
  std::unordered_map<NodeId, std::vector<const ClassDecl *>> Owners;
  for (NodeId Act : G.nodesOfKind(NodeKind::Activity)) {
    const ClassDecl *AClass = G.node(Act).Klass;
    for (NodeId Root : G.roots(Act))
      for (NodeId V : G.descendantsOf(Root)) {
        auto &List = Owners[V];
        if (std::find(List.begin(), List.end(), AClass) == List.end())
          List.push_back(AClass);
      }
  }
  return Owners;
}

} // namespace

std::vector<HandlerTuple>
gator::guimodel::extractHandlerTuples(const AnalysisResult &Result) {
  const ConstraintGraph &G = *Result.Graph;
  const Solution &Sol = *Result.Sol;

  auto Owners = viewOwners(Result);
  std::vector<HandlerTuple> Tuples;
  std::set<std::tuple<const ClassDecl *, NodeId, int, NodeId,
                      const MethodDecl *>>
      Seen;

  auto emit = [&](const ClassDecl *Act, NodeId View, EventKind Event,
                  NodeId Listener, const MethodDecl *Handler) {
    if (Seen.insert({Act, View, static_cast<int>(Event), Listener, Handler})
            .second)
      Tuples.push_back(HandlerTuple{Act, View, Event, Listener, Handler});
  };

  // Layout-declared handlers (`android:onClick`): the solver records the
  // owning window value as the view's listener; the handler is the named
  // method on the window's class.
  for (NodeId V : G.nodesOfKind(NodeKind::ViewInfl)) {
    const graph::Node &Info = G.node(V);
    if (!Info.LNode || !Info.LNode->hasOnClickHandler())
      continue;
    for (NodeId L : G.listeners(V)) {
      const graph::Node &LInfo = G.node(L);
      if (LInfo.Kind != NodeKind::Activity && LInfo.Kind != NodeKind::Alloc)
        continue;
      const MethodDecl *Handler =
          LInfo.Klass ? hier::ClassHierarchy::dispatch(
                            LInfo.Klass, Info.LNode->onClickHandlerName(), 1)
                      : nullptr;
      const ClassDecl *Act =
          LInfo.Kind == NodeKind::Activity ? LInfo.Klass : nullptr;
      if (Handler && !Handler->owner()->isPlatform())
        emit(Act, V, EventKind::Click, L, Handler);
    }
  }

  for (const OpSite &Op : Sol.ops()) {
    if (Op.Spec.Kind != OpKind::SetListener)
      continue;
    const ListenerSpec &Spec = *Op.Spec.Listener;
    for (NodeId V : Sol.receiversOf(Op)) {
      const std::vector<const ClassDecl *> *Acts = nullptr;
      auto It = Owners.find(V);
      if (It != Owners.end())
        Acts = &It->second;

      for (NodeId L : Sol.listenersAtOp(Op)) {
        const ClassDecl *LClass = G.node(L).Klass;
        bool AnyHandler = false;
        for (const HandlerSig &Sig : Spec.Handlers) {
          const MethodDecl *H =
              LClass ? hier::ClassHierarchy::dispatch(LClass, Sig.MethodName,
                                                      Sig.Arity)
                     : nullptr;
          if (!H || H->owner()->isPlatform())
            continue;
          AnyHandler = true;
          if (Acts)
            for (const ClassDecl *A : *Acts)
              emit(A, V, Spec.Event, L, H);
          else
            emit(nullptr, V, Spec.Event, L, H);
        }
        if (!AnyHandler) {
          if (Acts)
            for (const ClassDecl *A : *Acts)
              emit(A, V, Spec.Event, L, nullptr);
          else
            emit(nullptr, V, Spec.Event, L, nullptr);
        }
      }
    }
  }
  return Tuples;
}

void gator::guimodel::printHandlerTuples(std::ostream &OS,
                                         const AnalysisResult &Result,
                                         const std::vector<HandlerTuple>
                                             &Tuples) {
  const ConstraintGraph &G = *Result.Graph;
  for (const HandlerTuple &T : Tuples) {
    OS << (T.Activity ? T.Activity->name() : std::string("<unattached>"))
       << " | " << G.label(T.View) << " | " << eventKindName(T.Event)
       << " | "
       << (T.Handler ? T.Handler->qualifiedName() : std::string("<none>"))
       << '\n';
  }
}

//===----------------------------------------------------------------------===//
// View hierarchy printing
//===----------------------------------------------------------------------===//

namespace {

void printTree(std::ostream &OS, const ConstraintGraph &G, NodeId V,
               unsigned Depth, std::vector<NodeId> &Path) {
  for (unsigned I = 0; I < Depth; ++I)
    OS << "  ";
  OS << G.label(V);
  if (std::find(Path.begin(), Path.end(), V) != Path.end()) {
    OS << " (cycle)\n";
    return;
  }
  OS << '\n';
  Path.push_back(V);
  for (NodeId C : G.children(V))
    printTree(OS, G, C, Depth + 1, Path);
  Path.pop_back();
}

} // namespace

void gator::guimodel::printViewHierarchies(std::ostream &OS,
                                           const AnalysisResult &Result) {
  const ConstraintGraph &G = *Result.Graph;
  for (NodeId Act : G.nodesOfKind(NodeKind::Activity)) {
    OS << "activity " << G.node(Act).Klass->name() << ":\n";
    if (G.roots(Act).empty()) {
      OS << "  (no hierarchy)\n";
      continue;
    }
    for (NodeId Root : G.roots(Act)) {
      std::vector<NodeId> Path;
      printTree(OS, G, Root, 1, Path);
    }
  }
}

//===----------------------------------------------------------------------===//
// Activity transition graph
//===----------------------------------------------------------------------===//

namespace {

/// App-level call graph: caller -> callees (CHA).
std::unordered_map<const MethodDecl *, std::vector<const MethodDecl *>>
buildCallGraph(const Program &P) {
  hier::ClassHierarchy CH(P);
  std::unordered_map<const MethodDecl *, std::vector<const MethodDecl *>>
      CallGraph;
  for (const auto &C : P.classes()) {
    if (C->isPlatform())
      continue;
    for (const auto &M : C->methods()) {
      if (M->isAbstract())
        continue;
      auto &Callees = CallGraph[M];
      for (const Stmt &S : M->body()) {
        if (S.Kind != StmtKind::Invoke)
          continue;
        const Variable &BaseVar = M->var(S.Base);
        const ClassDecl *Recv =
            BaseVar.TypeName.empty() ? nullptr : P.findClass(BaseVar.TypeName);
        if (!Recv)
          continue;
        for (const MethodDecl *T : CH.resolveVirtualCall(
                 Recv, S.MethodName, static_cast<unsigned>(S.Args.size())))
          if (!T->owner()->isPlatform())
            Callees.push_back(T);
      }
    }
  }
  return CallGraph;
}

std::unordered_set<const MethodDecl *> reachableFrom(
    const MethodDecl *Start,
    const std::unordered_map<const MethodDecl *,
                             std::vector<const MethodDecl *>> &CallGraph) {
  std::unordered_set<const MethodDecl *> Seen;
  std::deque<const MethodDecl *> Work{Start};
  while (!Work.empty()) {
    const MethodDecl *M = Work.front();
    Work.pop_front();
    if (!Seen.insert(M).second)
      continue;
    auto It = CallGraph.find(M);
    if (It == CallGraph.end())
      continue;
    for (const MethodDecl *Callee : It->second)
      Work.push_back(Callee);
  }
  return Seen;
}

} // namespace

namespace {

/// Method -> activity classes it can start directly, via intent class
/// constants (SetIntentClass) flowing into startActivity calls.
std::unordered_map<const MethodDecl *, std::vector<const ClassDecl *>>
collectStarts(const AnalysisResult &Result) {
  const ConstraintGraph &G = *Result.Graph;
  const Solution &Sol = *Result.Sol;
  const AndroidModel &AM = Sol.androidModel();

  std::unordered_map<NodeId, std::vector<const ClassDecl *>> IntentTargets;
  for (const OpSite &Op : Sol.ops()) {
    if (Op.Spec.Kind != OpKind::SetIntentClass)
      continue;
    for (NodeId Intent : Sol.valuesAt(Op.Recv)) {
      if (G.node(Intent).Kind != NodeKind::Alloc)
        continue;
      for (NodeId Cls : Sol.valuesAt(Op.ValArg)) {
        if (G.node(Cls).Kind != NodeKind::ClassConst)
          continue;
        const ClassDecl *Target = G.node(Cls).Klass;
        if (AM.isActivityClass(Target))
          IntentTargets[Intent].push_back(Target);
      }
    }
  }

  std::unordered_map<const MethodDecl *, std::vector<const ClassDecl *>>
      Starts;
  for (const OpSite &Op : Sol.ops()) {
    if (Op.Spec.Kind != OpKind::StartActivity)
      continue;
    auto &List = Starts[Op.Method];
    for (NodeId Intent : Sol.valuesAt(Op.ValArg)) {
      auto It = IntentTargets.find(Intent);
      if (It == IntentTargets.end())
        continue;
      for (const ClassDecl *T : It->second)
        List.push_back(T);
    }
  }
  return Starts;
}

/// All transitioning event steps: tuple (a, v, e, h) where h reaches a
/// startActivity targeting b yields step (a, v, e, b).
std::vector<EventStep> collectEventSteps(const AnalysisResult &Result) {
  const Program &P = Result.Sol->androidModel().program();
  auto Starts = collectStarts(Result);
  auto CallGraph = buildCallGraph(P);

  std::vector<EventStep> Steps;
  std::set<std::tuple<const ClassDecl *, NodeId, int, const ClassDecl *>>
      Seen;
  for (const HandlerTuple &T : extractHandlerTuples(Result)) {
    if (!T.Handler || !T.Activity)
      continue;
    for (const MethodDecl *M : reachableFrom(T.Handler, CallGraph)) {
      auto It = Starts.find(M);
      if (It == Starts.end())
        continue;
      for (const ClassDecl *To : It->second)
        if (Seen.insert({T.Activity, T.View, static_cast<int>(T.Event), To})
                .second)
          Steps.push_back(EventStep{T.Activity, T.View, T.Event, To});
    }
  }
  return Steps;
}

} // namespace

std::vector<Transition>
gator::guimodel::buildActivityTransitionGraph(const AnalysisResult &Result) {
  const Solution &Sol = *Result.Sol;
  const Program &P = Sol.androidModel().program();
  const AndroidModel &AM = Sol.androidModel();

  auto Starts = collectStarts(Result);
  auto CallGraph = buildCallGraph(P);

  std::set<std::tuple<const ClassDecl *, int, const ClassDecl *>> Seen;
  std::vector<Transition> Transitions;
  auto emit = [&](const ClassDecl *From, std::optional<EventKind> Event,
                  const ClassDecl *To) {
    int EventTag = Event ? static_cast<int>(*Event) : -1;
    if (Seen.insert({From, EventTag, To}).second)
      Transitions.push_back(Transition{From, Event, To});
  };

  auto emitReachable = [&](const ClassDecl *From,
                           std::optional<EventKind> Event,
                           const MethodDecl *Entry) {
    for (const MethodDecl *M : reachableFrom(Entry, CallGraph)) {
      auto It = Starts.find(M);
      if (It == Starts.end())
        continue;
      for (const ClassDecl *To : It->second)
        emit(From, Event, To);
    }
  };

  // 3a. Event handlers: use the handler-tuple extraction.
  for (const HandlerTuple &T : extractHandlerTuples(Result))
    if (T.Handler && T.Activity)
      emitReachable(T.Activity, T.Event, T.Handler);

  // 3b. Lifecycle callbacks of each activity.
  for (const ClassDecl *A : AM.appActivityClasses()) {
    std::unordered_set<std::string> SeenNames;
    for (const ClassDecl *C = A; C && !C->isPlatform(); C = C->superClass())
      for (const auto &M : C->methods()) {
        if (M->isAbstract() || M->isStatic())
          continue;
        if (!AndroidModel::isLifecycleCallbackName(M->name()))
          continue;
        std::string Key =
            M->name() + "/" + std::to_string(M->paramCount());
        if (!SeenNames.insert(Key).second)
          continue;
        emitReachable(A, std::nullopt, M);
      }
  }

  return Transitions;
}

void gator::guimodel::printTransitionsDot(std::ostream &OS,
                                          const std::vector<Transition>
                                              &Transitions) {
  OS << "digraph atg {\n";
  std::set<const ClassDecl *> Nodes;
  for (const Transition &T : Transitions) {
    Nodes.insert(T.From);
    Nodes.insert(T.To);
  }
  for (const ClassDecl *N : Nodes)
    OS << "  \"" << N->name() << "\";\n";
  for (const Transition &T : Transitions) {
    OS << "  \"" << T.From->name() << "\" -> \"" << T.To->name() << "\"";
    if (T.Event)
      OS << " [label=\"" << eventKindName(*T.Event) << "\"]";
    else
      OS << " [label=\"lifecycle\", style=dashed]";
    OS << ";\n";
  }
  OS << "}\n";
}

//===----------------------------------------------------------------------===//
// Event-sequence enumeration
//===----------------------------------------------------------------------===//

std::vector<EventSequence> gator::guimodel::enumerateEventSequences(
    const AnalysisResult &Result, const ClassDecl *Start, unsigned MaxLength,
    unsigned MaxSequences) {
  std::vector<EventStep> Steps = collectEventSteps(Result);

  // Index steps by source activity.
  std::unordered_map<const ClassDecl *, std::vector<const EventStep *>>
      BySource;
  for (const EventStep &Step : Steps)
    BySource[Step.From].push_back(&Step);

  std::vector<EventSequence> Sequences;
  EventSequence Current;

  // DFS over the step graph; every non-empty prefix is a sequence.
  // Revisiting activities is allowed (GUIs cycle); the caps bound output.
  std::function<void(const ClassDecl *)> Extend =
      [&](const ClassDecl *At) {
        if (Sequences.size() >= MaxSequences ||
            Current.size() >= MaxLength)
          return;
        auto It = BySource.find(At);
        if (It == BySource.end())
          return;
        for (const EventStep *Step : It->second) {
          if (Sequences.size() >= MaxSequences)
            return;
          Current.push_back(*Step);
          Sequences.push_back(Current);
          Extend(Step->To);
          Current.pop_back();
        }
      };
  Extend(Start);
  return Sequences;
}

void gator::guimodel::printEventSequences(
    std::ostream &OS, const AnalysisResult &Result,
    const std::vector<EventSequence> &Sequences) {
  const ConstraintGraph &G = *Result.Graph;
  for (const EventSequence &Seq : Sequences) {
    bool First = true;
    for (const EventStep &Step : Seq) {
      if (First)
        OS << Step.From->name();
      OS << " --" << eventKindName(Step.Event) << '['
         << G.label(Step.View) << "]--> " << Step.To->name();
      First = false;
    }
    OS << '\n';
  }
}

//===----------------------------------------------------------------------===//
// View-reach report
//===----------------------------------------------------------------------===//

std::vector<ViewReach>
gator::guimodel::computeViewReach(const AnalysisResult &Result,
                                  const std::string &WidgetClassName) {
  const ConstraintGraph &G = *Result.Graph;
  const Solution &Sol = *Result.Sol;
  const Program &P = Sol.androidModel().program();
  const ClassDecl *Widget = P.findClass(WidgetClassName);
  if (!Widget)
    return {};

  // The interesting views: instances of the widget class.
  std::vector<NodeId> Interesting;
  for (NodeId V = 0; V < G.size(); ++V) {
    const graph::Node &N = G.node(V);
    if (isViewNodeKind(N.Kind) && N.Klass && P.isSubtypeOf(N.Klass, Widget))
      Interesting.push_back(V);
  }

  // Methods observing each: owners of variable nodes whose set holds it.
  std::unordered_map<NodeId, std::set<const MethodDecl *>> Reach;
  for (NodeId N = 0; N < G.size(); ++N) {
    if (G.node(N).Kind != NodeKind::Var)
      continue;
    const MethodDecl *M = G.node(N).Method;
    if (M->owner()->isPlatform())
      continue;
    const auto &Set = Sol.valuesAt(N);
    for (NodeId V : Interesting)
      if (Set.count(V))
        Reach[V].insert(M);
  }

  std::vector<ViewReach> Report;
  for (NodeId V : Interesting) {
    ViewReach Entry;
    Entry.View = V;
    auto It = Reach.find(V);
    if (It != Reach.end())
      Entry.Methods.assign(It->second.begin(), It->second.end());
    std::sort(Entry.Methods.begin(), Entry.Methods.end(),
              [](const MethodDecl *A, const MethodDecl *B) {
                return A->qualifiedName() < B->qualifiedName();
              });
    Report.push_back(std::move(Entry));
  }
  return Report;
}

void gator::guimodel::printViewReach(std::ostream &OS,
                                     const AnalysisResult &Result,
                                     const std::vector<ViewReach> &Reaches) {
  const ConstraintGraph &G = *Result.Graph;
  for (const ViewReach &R : Reaches) {
    OS << G.label(R.View) << " observed by:";
    if (R.Methods.empty())
      OS << " (no application method)";
    for (const MethodDecl *M : R.Methods)
      OS << ' ' << M->qualifiedName();
    OS << '\n';
  }
}
